//! Zyzzyva — speculative Byzantine fault tolerance (Kotla et al.), as
//! characterized in the paper (§1.1, §3):
//!
//! * "designed with the most optimal case in mind: it requires non-faulty
//!   clients and depends on clients to aid in the recovery of any
//!   failures";
//! * "clients in Zyzzyva require identical responses from all n replicas.
//!   If these are not received, the client initiates recovery of any
//!   requests with sufficient n − f responses by broadcasting certificates
//!   of these requests. This will greatly reduce performance when any
//!   replicas are faulty."
//!
//! The replica side is minimal: the primary orders requests and replicas
//! *speculatively execute* in order, answering clients directly with
//! signed responses that embed a rolling history digest. The client side
//! carries the protocol's complexity.

use crate::api::{ClientProtocol, Outbox, ReplicaProtocol, TimerKind};
use crate::clients::BatchSource;
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::exec::execute_batch_with_results;
use crate::messages::Message;
use crate::types::{Decision, DecisionEntry, SignedBatch};
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_common::time::SimTime;
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use rdb_store::KvStore;
use std::collections::{BTreeMap, HashMap};

/// Canonical bytes a replica signs in a speculative response.
pub fn spec_response_payload(
    view: u64,
    seq: u64,
    digest: &Digest,
    history: &Digest,
    result: &Digest,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 + 96 + 4);
    out.extend_from_slice(b"spec");
    out.extend_from_slice(&view.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(digest.as_bytes());
    out.extend_from_slice(history.as_bytes());
    out.extend_from_slice(result.as_bytes());
    out
}

/// A Zyzzyva replica.
pub struct ZyzzyvaReplica {
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    store: KvStore,
    members: Vec<ReplicaId>,
    /// Fixed view 0: the paper excludes Zyzzyva from primary-failure
    /// experiments ("it already fails to deal with non-primary failures").
    view: u64,
    /// Primary: next sequence number to assign.
    next_seq: u64,
    /// Ordered-but-not-executed requests (waiting for gaps to fill).
    ordered: BTreeMap<u64, SignedBatch>,
    /// Next sequence to execute speculatively.
    exec_next: u64,
    /// Rolling history digest `h_s = H(h_{s-1} || d_s)`.
    history: Digest,
    /// Executed requests (for commit-phase acknowledgements):
    /// seq -> (digest, history after execution, client, batch_seq).
    executed: BTreeMap<u64, (Digest, Digest, ClientId, u64)>,
    /// Primary-side dedupe of proposed client batches.
    proposed: HashMap<(ClientId, u64), u64>,
    executed_decisions: u64,
}

impl ZyzzyvaReplica {
    /// Build a replica.
    pub fn new(cfg: ProtocolConfig, id: ReplicaId, crypto: CryptoCtx, store: KvStore) -> Self {
        let members = cfg.system.all_replicas().collect();
        ZyzzyvaReplica {
            cfg,
            id,
            crypto,
            store,
            members,
            view: 0,
            next_seq: 1,
            ordered: BTreeMap::new(),
            exec_next: 1,
            history: Digest::ZERO,
            executed: BTreeMap::new(),
            proposed: HashMap::new(),
            executed_decisions: 0,
        }
    }

    fn primary(&self) -> ReplicaId {
        self.members[(self.view % self.members.len() as u64) as usize]
    }

    fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Decisions speculatively executed.
    pub fn executed_decisions(&self) -> u64 {
        self.executed_decisions
    }

    /// Store state digest (tests).
    pub fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    fn handle_request(&mut self, sb: SignedBatch, out: &mut Outbox) {
        if !self.is_primary() {
            out.send(self.primary(), Message::Forward(sb));
            return;
        }
        if !self.crypto.verify_batch(&sb) {
            return;
        }
        let key = (sb.batch.client, sb.batch.batch_seq);
        if self.proposed.contains_key(&key) {
            return; // duplicate; the speculative response was already sent
        }
        // Window control: don't run unboundedly ahead of execution.
        if self.next_seq >= self.exec_next + self.cfg.window {
            return; // dropped; the client will retransmit
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.proposed.insert(key, seq);
        let digest = sb.digest();
        let msg = Message::OrderReq {
            view: self.view,
            seq,
            batch: sb,
            history: digest,
        };
        out.multicast(self.members.iter().copied(), &msg);
    }

    fn handle_order_req(
        &mut self,
        from: ReplicaId,
        seq: u64,
        batch: SignedBatch,
        out: &mut Outbox,
    ) {
        if from != self.primary() {
            return;
        }
        if seq < self.exec_next || seq >= self.exec_next + 2 * self.cfg.window {
            return;
        }
        if !self.crypto.verify_batch(&batch) {
            return;
        }
        self.ordered.entry(seq).or_insert(batch);
        self.try_speculative_execute(out);
    }

    fn try_speculative_execute(&mut self, out: &mut Outbox) {
        while let Some(batch) = self.ordered.remove(&self.exec_next) {
            let seq = self.exec_next;
            self.exec_next += 1;
            self.executed_decisions += 1;
            let digest = batch.digest();
            self.history = Digest::combine(&self.history, &digest);
            let (result, results) =
                execute_batch_with_results(&mut self.store, self.cfg.exec_mode, &batch);
            let client = batch.batch.client;
            let batch_seq = batch.batch.batch_seq;
            self.executed
                .insert(seq, (digest, self.history, client, batch_seq));
            // Speculative response straight to the client, signed. The
            // signature covers the result digest; the outcome list rides
            // along unsigned and is validated against it by receivers.
            let sig = self.crypto.sign(&spec_response_payload(
                self.view,
                seq,
                &digest,
                &self.history,
                &result,
            ));
            out.send(
                client,
                Message::SpecResponse {
                    view: self.view,
                    seq,
                    batch_seq,
                    replica: self.id,
                    digest,
                    history: self.history,
                    result,
                    results,
                    sig,
                },
            );
            out.decided(Decision {
                seq,
                entries: vec![DecisionEntry {
                    origin: None,
                    batch,
                }],
                state_digest: self.store.state_digest(),
            });
            // Prune the executed log to a window.
            let keep_from = self.exec_next.saturating_sub(4 * self.cfg.window);
            self.executed.retain(|s, _| *s >= keep_from);
        }
    }

    fn handle_zyz_commit(
        &mut self,
        client: ClientId,
        batch_seq: u64,
        seq: u64,
        digest: Digest,
        sigs: &[(ReplicaId, Signature)],
        out: &mut Outbox,
    ) {
        // A commit certificate needs 2F + 1 matching responses.
        let needed = 2 * self.cfg.global_f() + 1;
        if sigs.len() < needed {
            return;
        }
        let Some((d, _h, c, bs)) = self.executed.get(&seq) else {
            return; // not executed here yet; the client will retry
        };
        if *d != digest || *c != client || *bs != batch_seq {
            return;
        }
        out.send(
            client,
            Message::LocalCommit {
                view: self.view,
                seq,
                batch_seq,
                replica: self.id,
            },
        );
    }
}

impl ReplicaProtocol for ZyzzyvaReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Request(sb) | Message::Forward(sb) => self.handle_request(sb, out),
            Message::OrderReq { seq, batch, .. } => {
                if let NodeId::Replica(from) = from {
                    self.handle_order_req(from, seq, batch, out);
                }
            }
            Message::ZyzCommit {
                client,
                batch_seq,
                seq,
                digest,
                sigs,
                ..
            } => self.handle_zyz_commit(client, batch_seq, seq, digest, &sigs, out),
            _ => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, _timer: TimerKind, _out: &mut Outbox) {}
}

/// One speculative response recorded by the client.
#[derive(Debug, Clone)]
struct SpecEntry {
    seq: u64,
    digest: Digest,
    history: Digest,
    sig: Signature,
}

/// In-flight request state at the client.
struct ZyzOutstanding {
    seq: u64,
    signed: SignedBatch,
    /// replica -> response.
    responses: HashMap<ReplicaId, SpecEntry>,
    /// replicas that acknowledged the commit certificate.
    local_commits: HashMap<ReplicaId, u64>,
    committing: bool,
}

/// The Zyzzyva client: the fast path requires responses from *all* `n`
/// replicas; the fallback broadcasts a commit certificate of `2F + 1`
/// matching responses.
pub struct ZyzzyvaClient {
    id: ClientId,
    cfg: ProtocolConfig,
    crypto: CryptoCtx,
    source: BatchSource,
    next_seq: u64,
    outstanding: Option<ZyzOutstanding>,
    retry_timeout: rdb_common::time::SimDuration,
}

impl ZyzzyvaClient {
    /// Create a client.
    pub fn new(
        id: ClientId,
        cfg: ProtocolConfig,
        crypto: CryptoCtx,
        source: BatchSource,
    ) -> ZyzzyvaClient {
        let retry_timeout = cfg.client_retry;
        ZyzzyvaClient {
            id,
            cfg,
            crypto,
            source,
            next_seq: 0,
            outstanding: None,
            retry_timeout,
        }
    }

    fn primary(&self) -> ReplicaId {
        self.cfg
            .system
            .all_replicas()
            .next()
            .expect("non-empty system")
    }

    fn total_replicas(&self) -> usize {
        self.cfg.global_n()
    }

    /// Find the largest set of matching responses (same seq, digest,
    /// history).
    fn best_match(outst: &ZyzOutstanding) -> (usize, Option<(u64, Digest, Digest)>) {
        let mut counts: HashMap<(u64, Digest, Digest), usize> = HashMap::new();
        for e in outst.responses.values() {
            *counts.entry((e.seq, e.digest, e.history)).or_default() += 1;
        }
        counts
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map_or((0, None), |(k, c)| (c, Some(k)))
    }

    fn complete(&mut self, out: &mut Outbox) {
        let outst = self.outstanding.take().expect("outstanding");
        out.cancel_timer(TimerKind::ClientRetry { seq: outst.seq });
        out.cancel_timer(TimerKind::SpecWindow { seq: outst.seq });
        out.request_complete(outst.seq, outst.signed.batch.len());
    }
}

impl ClientProtocol for ZyzzyvaClient {
    fn id(&self) -> ClientId {
        self.id
    }

    fn next_request(&mut self, _now: SimTime, out: &mut Outbox) -> bool {
        debug_assert!(self.outstanding.is_none());
        let seq = self.next_seq;
        self.next_seq += 1;
        let batch = (self.source)(seq);
        let digest = batch.digest();
        let signed = SignedBatch {
            sig: self.crypto.sign(digest.as_bytes()),
            pubkey: self.crypto.public_key(),
            batch,
        };
        self.outstanding = Some(ZyzOutstanding {
            seq,
            signed: signed.clone(),
            responses: HashMap::new(),
            local_commits: HashMap::new(),
            committing: false,
        });
        self.retry_timeout = self.cfg.client_retry;
        out.send(self.primary(), Message::Request(signed));
        out.set_timer(TimerKind::SpecWindow { seq }, self.cfg.spec_window);
        out.set_timer(TimerKind::ClientRetry { seq }, self.retry_timeout);
        true
    }

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        let NodeId::Replica(replica) = from else {
            return;
        };
        let total = self.total_replicas();
        let needed_commit = 2 * self.cfg.global_f() + 1;
        let Some(outst) = self.outstanding.as_mut() else {
            return;
        };
        match msg {
            Message::SpecResponse {
                view,
                seq,
                batch_seq,
                replica: resp_replica,
                digest,
                history,
                result,
                results: _,
                sig,
            } => {
                if batch_seq != outst.seq || resp_replica != replica {
                    return;
                }
                if digest != outst.signed.digest() {
                    return;
                }
                if self.crypto.checks_signatures() {
                    let Some(pk) = self.crypto.verifier().public_key_of(replica.into()) else {
                        return;
                    };
                    let payload = spec_response_payload(view, seq, &digest, &history, &result);
                    if !self.crypto.verify(&pk, &payload, &sig) {
                        return;
                    }
                }
                outst.responses.insert(
                    replica,
                    SpecEntry {
                        seq,
                        digest,
                        history,
                        sig,
                    },
                );
                // Fast path: all n replicas agree (§3: "clients in Zyzzyva
                // require identical responses from all n replicas").
                let (count, _) = Self::best_match(outst);
                if count == total {
                    self.complete(out);
                }
            }
            Message::LocalCommit { seq, batch_seq, .. } => {
                if batch_seq != outst.seq || !outst.committing {
                    return;
                }
                outst.local_commits.insert(replica, seq);
                if outst.local_commits.len() >= needed_commit {
                    self.complete(out);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer: TimerKind, out: &mut Outbox) {
        let needed_commit = 2 * self.cfg.global_f() + 1;
        match timer {
            TimerKind::SpecWindow { seq } => {
                let Some(outst) = self.outstanding.as_mut() else {
                    return;
                };
                if outst.seq != seq || outst.committing {
                    return;
                }
                let (count, key) = Self::best_match(outst);
                if count >= needed_commit {
                    // Commit phase: broadcast the certificate of 2F + 1
                    // matching responses to all replicas.
                    let (rseq, digest, history) = key.expect("count > 0");
                    outst.committing = true;
                    let sigs: Vec<(ReplicaId, Signature)> = outst
                        .responses
                        .iter()
                        .filter(|(_, e)| {
                            e.seq == rseq && e.digest == digest && e.history == history
                        })
                        .map(|(r, e)| (*r, e.sig))
                        .take(needed_commit)
                        .collect();
                    let msg = Message::ZyzCommit {
                        client: self.id,
                        batch_seq: outst.seq,
                        view: 0,
                        seq: rseq,
                        digest,
                        history,
                        sigs,
                    };
                    let members: Vec<ReplicaId> = self.cfg.system.all_replicas().collect();
                    out.multicast(members, &msg);
                } else {
                    // Not enough responses yet: extend the window and keep
                    // waiting (the retry timer handles retransmission).
                    out.set_timer(TimerKind::SpecWindow { seq }, self.cfg.spec_window);
                }
            }
            TimerKind::ClientRetry { seq } => {
                let Some(outst) = self.outstanding.as_ref() else {
                    return;
                };
                if outst.seq != seq {
                    return;
                }
                let msg = Message::Request(outst.signed.clone());
                out.send(self.primary(), msg);
                // Capped exponential back-off, like QuorumClient's.
                self.retry_timeout = self.retry_timeout.doubled().min(self.cfg.client_retry_cap);
                out.set_timer(TimerKind::ClientRetry { seq }, self.retry_timeout);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;
    use crate::clients::synthetic_source;
    use crate::config::ExecMode;
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;

    fn setup(n: usize) -> (Vec<ZyzzyvaReplica>, ZyzzyvaClient, KeyStore, ProtocolConfig) {
        let system = SystemConfig::geo(1, n).unwrap();
        let mut cfg = ProtocolConfig::new(system.clone());
        cfg.exec_mode = ExecMode::Real;
        let ks = KeyStore::new(33);
        let replicas: Vec<ZyzzyvaReplica> = system
            .all_replicas()
            .map(|r| {
                let signer = ks.register(NodeId::Replica(r));
                let crypto = CryptoCtx::new(signer, ks.verifier(), true);
                ZyzzyvaReplica::new(cfg.clone(), r, crypto, KvStore::with_ycsb_records(50))
            })
            .collect();
        let cid = ClientId::new(0, 0);
        let signer = ks.register(NodeId::Client(cid));
        let crypto = CryptoCtx::new(signer, ks.verifier(), true);
        let client = ZyzzyvaClient::new(cid, cfg.clone(), crypto, synthetic_source(cid, 3, 30));
        (replicas, client, ks, cfg)
    }

    /// Deliver actions among replicas + the one client until quiescent.
    fn pump(
        replicas: &mut [ZyzzyvaReplica],
        client: &mut ZyzzyvaClient,
        initial: Vec<Action>,
        skip_replica: Option<usize>,
    ) -> bool {
        let mut queue: Vec<(NodeId, Action)> = initial
            .into_iter()
            .map(|a| (NodeId::Client(client.id()), a))
            .collect();
        let mut completed = false;
        let mut steps = 0;
        while let Some((from, action)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000);
            match action {
                Action::Send { to, msg } => match to {
                    NodeId::Replica(r) => {
                        let idx = r.index as usize;
                        if Some(idx) == skip_replica {
                            continue;
                        }
                        let mut out = Outbox::new();
                        replicas[idx].on_message(SimTime::ZERO, from, msg, &mut out);
                        for a in out.take() {
                            queue.push((NodeId::Replica(r), a));
                        }
                    }
                    NodeId::Client(_) => {
                        let mut out = Outbox::new();
                        client.on_message(SimTime::ZERO, from, msg, &mut out);
                        for a in out.take() {
                            queue.push((NodeId::Client(client.id()), a));
                        }
                    }
                },
                Action::RequestComplete { .. } => completed = true,
                _ => {}
            }
        }
        completed
    }

    #[test]
    fn fast_path_completes_with_all_replicas() {
        let (mut replicas, mut client, _ks, _cfg) = setup(4);
        let mut out = Outbox::new();
        client.next_request(SimTime::ZERO, &mut out);
        let completed = pump(&mut replicas, &mut client, out.take(), None);
        assert!(completed, "all 4 spec responses => fast-path completion");
        // All replicas executed speculatively and agree.
        let s0 = replicas[0].state_digest();
        assert!(replicas.iter().all(|r| r.state_digest() == s0));
        assert!(replicas.iter().all(|r| r.executed_decisions() == 1));
    }

    #[test]
    fn one_failure_stalls_fast_path_until_commit_phase() {
        let (mut replicas, mut client, _ks, _cfg) = setup(4);
        let mut out = Outbox::new();
        client.next_request(SimTime::ZERO, &mut out);
        // Replica 3 is down: only 3 of 4 responses arrive.
        let completed = pump(&mut replicas, &mut client, out.take(), Some(3));
        assert!(!completed, "fast path requires all n responses");

        // The spec-window timer fires: 3 = 2F+1 responses are enough for
        // the commit phase.
        let mut out = Outbox::new();
        client.on_timer(SimTime::ZERO, TimerKind::SpecWindow { seq: 0 }, &mut out);
        let actions = out.take();
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::ZyzCommit { .. },
                ..
            }
        )));
        let completed = pump(&mut replicas, &mut client, actions, Some(3));
        assert!(completed, "commit phase completes with 2F+1 local-commits");
    }

    #[test]
    fn too_few_responses_extends_window() {
        let (_replicas, mut client, _ks, _cfg) = setup(4);
        let mut out = Outbox::new();
        client.next_request(SimTime::ZERO, &mut out);
        drop(out); // nobody answers
        let mut out = Outbox::new();
        client.on_timer(SimTime::ZERO, TimerKind::SpecWindow { seq: 0 }, &mut out);
        let actions = out.take();
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SetTimer {
                kind: TimerKind::SpecWindow { seq: 0 },
                ..
            }
        )));
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: Message::ZyzCommit { .. },
                ..
            }
        )));
    }

    #[test]
    fn replicas_execute_in_seq_order_despite_reordering() {
        let (mut replicas, _client, ks, _cfg) = setup(4);
        // Hand a backup replica order-reqs out of order.
        let c = ClientId::new(0, 9);
        let signer = ks.register(NodeId::Client(c));
        let mut src = synthetic_source(c, 2, 20);
        let mut mk = |seq: u64| {
            let b = src(seq);
            let sig = signer.sign(b.digest().as_bytes());
            SignedBatch {
                pubkey: signer.public_key(),
                sig,
                batch: b,
            }
        };
        let b1 = mk(0);
        let b2 = mk(1);
        let primary = ReplicaId::new(0, 0);
        let mut out = Outbox::new();
        replicas[1].on_message(
            SimTime::ZERO,
            primary.into(),
            Message::OrderReq {
                view: 0,
                seq: 2,
                batch: b2,
                history: Digest::ZERO,
            },
            &mut out,
        );
        assert_eq!(replicas[1].executed_decisions(), 0, "gap at seq 1");
        replicas[1].on_message(
            SimTime::ZERO,
            primary.into(),
            Message::OrderReq {
                view: 0,
                seq: 1,
                batch: b1,
                history: Digest::ZERO,
            },
            &mut out,
        );
        assert_eq!(
            replicas[1].executed_decisions(),
            2,
            "both executed in order"
        );
    }

    #[test]
    fn order_req_from_non_primary_rejected() {
        let (mut replicas, _client, ks, _cfg) = setup(4);
        let c = ClientId::new(0, 9);
        let signer = ks.register(NodeId::Client(c));
        let mut src = synthetic_source(c, 2, 20);
        let b = src(0);
        let sig = signer.sign(b.digest().as_bytes());
        let sb = SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch: b,
        };
        let mut out = Outbox::new();
        replicas[1].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 2).into(),
            Message::OrderReq {
                view: 0,
                seq: 1,
                batch: sb,
                history: Digest::ZERO,
            },
            &mut out,
        );
        assert_eq!(replicas[1].executed_decisions(), 0);
        assert!(out.take().is_empty());
    }

    #[test]
    fn commit_certificate_with_too_few_sigs_ignored() {
        let (mut replicas, mut client, _ks, _cfg) = setup(4);
        let mut out = Outbox::new();
        client.next_request(SimTime::ZERO, &mut out);
        pump(&mut replicas, &mut client, out.take(), None);
        // Craft an undersized commit certificate.
        let mut out = Outbox::new();
        replicas[1].on_message(
            SimTime::ZERO,
            NodeId::Client(ClientId::new(0, 0)),
            Message::ZyzCommit {
                client: ClientId::new(0, 0),
                batch_seq: 0,
                view: 0,
                seq: 1,
                digest: Digest::ZERO,
                history: Digest::ZERO,
                sigs: vec![(ReplicaId::new(0, 0), Signature::default())],
            },
            &mut out,
        );
        assert!(out.take().is_empty());
    }
}
