//! Transactions, client batches and decisions — the payloads consensus
//! orders.

use rdb_common::ids::{ClientId, ClusterId};
use rdb_common::wire;
use rdb_crypto::digest::Digest;
use rdb_crypto::sha256::Sha256;
use rdb_crypto::sign::{PublicKey, Signature};
use rdb_store::Operation;
use serde::{Deserialize, Serialize};

/// One client transaction `T` (a YCSB query in the evaluation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// The issuing client.
    pub client: ClientId,
    /// Client-local transaction sequence number (unique per client).
    pub seq: u64,
    /// The operation to execute.
    pub op: Operation,
}

impl Transaction {
    /// Feed the canonical byte representation into a hasher.
    fn absorb(&self, h: &mut Sha256) {
        h.update(&self.client.cluster.0.to_le_bytes());
        h.update(&self.client.index.to_le_bytes());
        h.update(&self.seq.to_le_bytes());
        match &self.op {
            Operation::Write { key, value } => {
                h.update(&[0u8]);
                h.update(&key.to_le_bytes());
                h.update(&value.0);
            }
            Operation::Read { key } => {
                h.update(&[1u8]);
                h.update(&key.to_le_bytes());
            }
            Operation::Rmw { key, delta } => {
                h.update(&[2u8]);
                h.update(&key.to_le_bytes());
                h.update(&delta.to_le_bytes());
            }
            Operation::Insert { key, value } => {
                h.update(&[3u8]);
                h.update(&key.to_le_bytes());
                h.update(&value.0);
            }
            Operation::Scan { key, count } => {
                h.update(&[4u8]);
                h.update(&key.to_le_bytes());
                h.update(&count.to_le_bytes());
            }
            Operation::NoOp => {
                h.update(&[5u8]);
            }
            Operation::Txn(prog) => {
                h.update(&[6u8]);
                h.update(&prog.canonical_bytes());
            }
        }
    }
}

/// A batch of transactions from one client — the unit the protocols order
/// (§3 "Request batching": clients group their requests in batches; the
/// batch is processed by the consensus protocol as a single request).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientBatch {
    /// The issuing client.
    pub client: ClientId,
    /// Client-local batch sequence number.
    pub batch_seq: u64,
    /// The transactions, in execution order.
    pub txns: Vec<Transaction>,
}

impl ClientBatch {
    /// A batch containing a single no-op transaction, proposed by GeoBFT
    /// primaries for rounds without client load (§2.5). Attributed to a
    /// synthetic client index `u32::MAX` of the proposing cluster.
    pub fn noop(cluster: ClusterId, round: u64) -> ClientBatch {
        let client = ClientId {
            cluster,
            index: u32::MAX,
        };
        ClientBatch {
            client,
            batch_seq: round,
            txns: vec![Transaction {
                client,
                seq: round,
                op: Operation::NoOp,
            }],
        }
    }

    /// Canonical digest of the batch contents.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"client-batch");
        h.update(&self.client.cluster.0.to_le_bytes());
        h.update(&self.client.index.to_le_bytes());
        h.update(&self.batch_seq.to_le_bytes());
        h.update(&(self.txns.len() as u64).to_le_bytes());
        for t in &self.txns {
            t.absorb(&mut h);
        }
        Digest(h.finalize())
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// True when the batch carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// The operations, for execution.
    pub fn operations(&self) -> impl Iterator<Item = &Operation> {
        self.txns.iter().map(|t| &t.op)
    }

    /// Modeled wire size (see `rdb_common::wire`).
    pub fn wire_size(&self) -> usize {
        wire::batch_bytes(self.txns.len())
    }
}

/// A client batch signed by its client: `⟨T⟩_c` in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedBatch {
    /// The batch.
    pub batch: ClientBatch,
    /// The client's public key.
    pub pubkey: PublicKey,
    /// Signature over the batch digest.
    pub sig: Signature,
}

impl SignedBatch {
    /// Digest of the inner batch.
    pub fn digest(&self) -> Digest {
        self.batch.digest()
    }

    /// Modeled wire size.
    pub fn wire_size(&self) -> usize {
        self.batch.wire_size()
    }

    /// Convenience: a no-op signed batch. No-op requests are proposed by
    /// the primary itself; their "signature" is the primary's (checked as
    /// such by peers via the commit certificate, not the client key).
    pub fn noop(cluster: ClusterId, round: u64) -> SignedBatch {
        SignedBatch {
            batch: ClientBatch::noop(cluster, round),
            pubkey: PublicKey::default(),
            sig: Signature::default(),
        }
    }

    /// True when this is a primary-generated no-op batch.
    pub fn is_noop(&self) -> bool {
        self.batch.client.index == u32::MAX
    }
}

/// A finalized consensus decision, as reported to the driver via
/// [`crate::api::Action::Decided`].
///
/// For the single-log protocols (PBFT, Zyzzyva, HotStuff, Steward) one
/// decision carries one batch. For GeoBFT one decision is a *round*: `z`
/// batches, one per cluster, executed in cluster order (§2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The log position (sequence number or GeoBFT round).
    pub seq: u64,
    /// The ordered entries executed at this position.
    pub entries: Vec<DecisionEntry>,
    /// Digest of the replica's store state after execution (equal across
    /// non-faulty replicas by determinism).
    pub state_digest: Digest,
}

/// One ordered batch within a decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionEntry {
    /// The cluster whose consensus produced this batch (`None` for the
    /// single-log protocols).
    pub origin: Option<ClusterId>,
    /// The batch executed.
    pub batch: SignedBatch,
}

impl Decision {
    /// Total transactions across all entries.
    pub fn txn_count(&self) -> usize {
        self.entries.iter().map(|e| e.batch.batch.len()).sum()
    }

    /// Total register-machine instructions across all transaction
    /// programs in all entries (0 for plain YCSB batches). The simulator
    /// charges execution time per instruction on top of the
    /// per-transaction baseline.
    pub fn program_instrs(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|e| e.batch.batch.operations())
            .map(|op| match op {
                Operation::Txn(prog) => prog.cost(),
                _ => 0,
            })
            .sum()
    }
}

/// The result a replica reports back to a client for one batch.
///
/// Since the client-service API redesign a reply carries the full
/// execution outcome, not just its digest: the log position the batch
/// committed at (`seq`), the ledger height of the block that carries it
/// (`block_height`), and the per-transaction [`rdb_store::ExecOutcome`]s
/// (`results`) — so a `Read` submitted through a
/// `resilientdb` client session returns the actual value end-to-end.
/// The modeled wire size was always calibrated for result-carrying
/// replies (§4: ≈1.5 kB at batch 100), so it still derives from `txns`
/// alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplyData {
    /// The client the reply is for.
    pub client: ClientId,
    /// The client's batch sequence number being answered.
    pub batch_seq: u64,
    /// The log position (consensus sequence number / GeoBFT round) the
    /// batch committed at.
    pub seq: u64,
    /// Height of the ledger block carrying this batch (single-log
    /// protocols append one block per decision; GeoBFT appends `z`
    /// blocks per round, one per cluster in cluster order).
    pub block_height: u64,
    /// Digest of the execution effect (clients match `f + 1` identical
    /// ones, §2.4). Always equals
    /// [`crate::exec::result_digest`]`(batch_digest, &results)` for
    /// honestly produced real-execution replies, which is how sessions
    /// reject forged `results` payloads.
    pub result_digest: Digest,
    /// Per-transaction execution outcomes, in batch order (empty under
    /// [`crate::config::ExecMode::Modeled`], where no store is mutated).
    pub results: rdb_store::TxnEffect,
    /// Number of transactions executed.
    pub txns: u32,
}

impl ReplyData {
    /// Modeled wire size of a reply (≈1.5 kB for batch 100, §4).
    pub fn wire_size(&self) -> usize {
        wire::response_bytes(self.txns as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::ClientId;
    use rdb_store::Value;

    fn batch(n: usize) -> ClientBatch {
        let client = ClientId::new(0, 1);
        ClientBatch {
            client,
            batch_seq: 7,
            txns: (0..n as u64)
                .map(|i| Transaction {
                    client,
                    seq: i,
                    op: Operation::Write {
                        key: i,
                        value: Value::from_u64(i),
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn digest_is_content_sensitive() {
        let a = batch(3);
        let mut b = batch(3);
        assert_eq!(a.digest(), b.digest());
        b.txns[1].op = Operation::NoOp;
        assert_ne!(a.digest(), b.digest());
        let mut c = batch(3);
        c.batch_seq = 8;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_differs_on_txn_order() {
        let a = batch(2);
        let mut b = batch(2);
        b.txns.swap(0, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn noop_batches_are_flagged() {
        let nb = SignedBatch::noop(ClusterId(2), 5);
        assert!(nb.is_noop());
        assert_eq!(nb.batch.len(), 1);
        assert_eq!(nb.batch.client.cluster, ClusterId(2));
        let real = SignedBatch {
            batch: batch(1),
            pubkey: PublicKey::default(),
            sig: Signature::default(),
        };
        assert!(!real.is_noop());
    }

    #[test]
    fn decision_counts_transactions() {
        let d = Decision {
            seq: 1,
            entries: vec![
                DecisionEntry {
                    origin: Some(ClusterId(0)),
                    batch: SignedBatch {
                        batch: batch(3),
                        pubkey: PublicKey::default(),
                        sig: Signature::default(),
                    },
                },
                DecisionEntry {
                    origin: Some(ClusterId(1)),
                    batch: SignedBatch::noop(ClusterId(1), 1),
                },
            ],
            state_digest: Digest::ZERO,
        };
        assert_eq!(d.txn_count(), 4);
    }

    #[test]
    fn wire_sizes_follow_model() {
        assert_eq!(batch(100).wire_size(), rdb_common::wire::batch_bytes(100));
        let r = ReplyData {
            client: ClientId::new(0, 0),
            batch_seq: 0,
            seq: 1,
            block_height: 1,
            result_digest: Digest::ZERO,
            results: rdb_store::TxnEffect::default(),
            txns: 100,
        };
        assert_eq!(r.wire_size(), rdb_common::wire::response_bytes(100));
    }
}
