//! Every message exchanged by the five protocols, with the modeled wire
//! sizes used for bandwidth accounting.
//!
//! A single enum keeps dispatch in the drivers trivial and lets the
//! network layer compute sizes uniformly. Variants are grouped by
//! protocol; the PBFT group is shared: GeoBFT runs it per cluster (scoped
//! by [`Scope::Cluster`]) and plain PBFT runs it across all replicas
//! ([`Scope::Global`]).

use crate::certificate::CommitCertificate;
use crate::types::{ReplyData, SignedBatch};
use rdb_common::ids::{ClientId, ClusterId, ReplicaId};
use rdb_common::wire;
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use serde::{Deserialize, Serialize};

/// Which replica group a PBFT-core message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// All `z * n` replicas form one PBFT group (plain PBFT, Zyzzyva,
    /// HotStuff addressing).
    Global,
    /// The `n` replicas of one cluster (GeoBFT local replication, Steward
    /// local agreement).
    Cluster(ClusterId),
}

/// The four HotStuff phases (basic, non-chained HotStuff; the paper's
/// implementation runs parallel primaries without a pacemaker, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HsPhase {
    /// Leader proposes; replicas send prepare votes.
    Prepare,
    /// Leader has a prepare QC; replicas send pre-commit votes.
    PreCommit,
    /// Leader has a pre-commit QC; replicas send commit votes.
    Commit,
    /// Leader has a commit QC; replicas execute.
    Decide,
}

/// A HotStuff quorum certificate: `n - f` signed votes for `(slot, phase,
/// digest)`. The paper's implementation skips threshold signatures, so the
/// QC carries the individual votes (§3, "Other protocols").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HsQc {
    /// The slot this QC certifies.
    pub slot: u64,
    /// The phase the votes were cast in.
    pub phase: HsPhase,
    /// The proposal digest.
    pub digest: Digest,
    /// The votes: (voter, signature over the vote payload).
    pub votes: Vec<(ReplicaId, Signature)>,
}

impl HsQc {
    /// Modeled wire size: digest plus one signed entry per vote.
    pub fn wire_size(&self) -> usize {
        wire::DIGEST_BYTES + self.votes.len() * (wire::PUBKEY_BYTES + wire::SIG_BYTES)
    }
}

/// A prepared-instance proof inside a PBFT view-change message: the
/// instance sequence, digest, and the client batch so the new primary can
/// re-propose it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreparedProof {
    /// Sequence number of the prepared instance.
    pub seq: u64,
    /// Digest of the prepared batch.
    pub digest: Digest,
    /// The batch itself.
    pub batch: SignedBatch,
}

/// All protocol messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    // ------------------------------------------------------ client path --
    /// Client submits a signed batch to a replica.
    Request(SignedBatch),
    /// A replica forwards a client request to the (current) primary; used
    /// on client retransmission and by relay nodes.
    Forward(SignedBatch),
    /// Execution result for one client batch. `view` lets clients learn
    /// the current primary.
    Reply {
        /// The reply payload.
        data: ReplyData,
        /// The sender's current view (primary hint for the client).
        view: u64,
    },

    // ------------------------------------------- PBFT core (scoped) ------
    /// Primary proposes `batch` at `seq` in `view`.
    PrePrepare {
        /// Replica group.
        scope: Scope,
        /// Current view within the group.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// The proposed client batch.
        batch: SignedBatch,
        /// Digest of `batch` (recomputed and checked by receivers).
        digest: Digest,
    },
    /// First-phase agreement vote (MAC-authenticated, not signed — §2.2:
    /// only client requests and commit messages carry signatures).
    Prepare {
        /// Replica group.
        scope: Scope,
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Batch digest being prepared.
        digest: Digest,
    },
    /// Second-phase vote, signed so that `n - f` of them form a commit
    /// certificate (§2.2).
    Commit {
        /// Replica group.
        scope: Scope,
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Batch digest being committed.
        digest: Digest,
        /// Signature over [`crate::certificate::commit_payload`].
        sig: Signature,
    },
    /// Periodic state checkpoint (garbage-collects the instance log).
    Checkpoint {
        /// Replica group.
        scope: Scope,
        /// Sequence number the checkpoint covers (all seq' <= seq executed).
        seq: u64,
        /// Digest of the store state at that point.
        state: Digest,
    },
    /// A replica votes to move the group to `new_view`.
    ViewChange {
        /// Replica group.
        scope: Scope,
        /// The proposed view.
        new_view: u64,
        /// Last stable checkpoint sequence known to the sender.
        stable_seq: u64,
        /// Prepared-but-unexecuted instances that must survive the change.
        prepared: Vec<PreparedProof>,
    },
    /// The new primary installs `view`, re-proposing the union of prepared
    /// instances from `n - f` view-change messages.
    NewView {
        /// Replica group.
        scope: Scope,
        /// The installed view.
        view: u64,
        /// Instances the new primary re-proposes: (seq, batch).
        preprepares: Vec<(u64, SignedBatch)>,
        /// Stable checkpoint the view starts from.
        stable_seq: u64,
    },

    // ------------------------------------------------ GeoBFT global ------
    /// Optimistic inter-cluster sharing of a commit certificate (global
    /// phase primary -> f+1 remote replicas; local phase broadcast) —
    /// Figure 5 of the paper.
    GlobalShare {
        /// The certificate (embeds the client batch).
        cert: CommitCertificate,
    },
    /// "Detect remote view-change": local agreement in the observing
    /// cluster that `target` failed to share round `round` (Figure 7,
    /// initiation role).
    Drvc {
        /// The cluster suspected of failing to share.
        target: ClusterId,
        /// The round whose certificate is missing.
        round: u64,
        /// The requester-side view-change counter `v1` (replay protection).
        v: u64,
    },
    /// Remote view-change request sent across clusters after `n - f` DRVC
    /// agreement, and forwarded within the target cluster (Figure 7,
    /// response role). Signed: it crosses cluster boundaries.
    Rvc {
        /// The cluster being asked to change its primary.
        target: ClusterId,
        /// The round that triggered the request.
        round: u64,
        /// The requester-side counter `v`.
        v: u64,
        /// The requesting replica (from the observing cluster).
        requester: ReplicaId,
        /// Requester's signature over the request.
        sig: Signature,
    },

    // ---------------------------------------------------- Zyzzyva --------
    /// Primary orders a request and broadcasts it for speculative
    /// execution.
    OrderReq {
        /// View.
        view: u64,
        /// Assigned sequence number.
        seq: u64,
        /// The ordered batch.
        batch: SignedBatch,
        /// Rolling history digest `h_seq = H(h_{seq-1} || d_seq)`.
        history: Digest,
    },
    /// Replica's signed speculative response, sent directly to the client.
    SpecResponse {
        /// View.
        view: u64,
        /// Global sequence number the batch executed at.
        seq: u64,
        /// The client batch being answered.
        batch_seq: u64,
        /// The answering replica.
        replica: ReplicaId,
        /// Batch digest.
        digest: Digest,
        /// History digest after executing `seq`.
        history: Digest,
        /// Execution result digest.
        result: Digest,
        /// Per-transaction execution outcomes (what `result` digests;
        /// empty under modeled execution). Carried so the service API's
        /// read-backs work on Zyzzyva too; the signature covers `result`,
        /// and receivers validate `results` against it.
        results: rdb_store::TxnEffect,
        /// Signature over the response (clients aggregate these).
        sig: Signature,
    },
    /// Client fallback: a commit certificate of `2F + 1` matching
    /// speculative responses, broadcast to all replicas.
    ZyzCommit {
        /// The client issuing the certificate.
        client: ClientId,
        /// The client batch seq being committed.
        batch_seq: u64,
        /// (view, seq, digest, history) the responses agreed on.
        view: u64,
        /// Global sequence number.
        seq: u64,
        /// Batch digest.
        digest: Digest,
        /// Agreed history digest.
        history: Digest,
        /// The aggregated responder signatures.
        sigs: Vec<(ReplicaId, Signature)>,
    },
    /// Replica acknowledgement of a [`Message::ZyzCommit`].
    LocalCommit {
        /// View.
        view: u64,
        /// Global sequence number.
        seq: u64,
        /// The client batch seq.
        batch_seq: u64,
        /// Acknowledging replica.
        replica: ReplicaId,
    },

    // ---------------------------------------------------- HotStuff -------
    /// Leader message for one phase of one slot. In `Prepare` it carries
    /// the batch; later phases carry the QC justifying the phase switch.
    HsProposal {
        /// The slot (global sequence number).
        slot: u64,
        /// The phase this message drives.
        phase: HsPhase,
        /// The proposed batch (Prepare phase only).
        batch: Option<SignedBatch>,
        /// Digest of the proposal.
        digest: Digest,
        /// QC of the previous phase (absent for Prepare).
        justify: Option<HsQc>,
    },
    /// Replica vote for `(slot, phase, digest)`, sent to the slot leader.
    HsVote {
        /// The slot.
        slot: u64,
        /// The phase voted in.
        phase: HsPhase,
        /// The digest voted for.
        digest: Digest,
        /// The voter.
        replica: ReplicaId,
        /// Vote signature.
        sig: Signature,
    },

    // ----------------------------------------------------- Steward -------
    /// The primary cluster's certified proposal for global sequence `seq`,
    /// sent to remote cluster representatives and relayed locally.
    StewardProposal {
        /// Global sequence number.
        seq: u64,
        /// The primary cluster's commit certificate for the batch.
        cert: CommitCertificate,
    },
    /// A replica's signed local accept, collected by its cluster
    /// representative.
    StewardLocalAccept {
        /// Global sequence number.
        seq: u64,
        /// Digest accepted.
        digest: Digest,
        /// The accepting replica.
        replica: ReplicaId,
        /// Accept signature.
        sig: Signature,
    },
    /// A cluster's aggregated accept (stand-in for Steward's
    /// threshold-signed site message), shared with every other cluster.
    StewardAccept {
        /// Global sequence number.
        seq: u64,
        /// The accepting cluster.
        cluster: ClusterId,
        /// Digest accepted.
        digest: Digest,
        /// `n - f` accept signatures from that cluster.
        sigs: Vec<(ReplicaId, Signature)>,
    },

    /// Test-only empty message.
    Noop,
}

impl Message {
    /// Modeled wire size in bytes (see `rdb_common::wire` for calibration
    /// against §4 of the paper).
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Request(sb) | Message::Forward(sb) => wire::HEADER_BYTES + sb.wire_size(),
            Message::Reply { data, .. } => data.wire_size(),
            Message::PrePrepare { batch, .. } => wire::preprepare_bytes(batch.batch.len()),
            Message::Prepare { .. }
            | Message::Checkpoint { .. }
            | Message::Drvc { .. }
            | Message::LocalCommit { .. }
            | Message::HsVote { .. }
            | Message::StewardLocalAccept { .. }
            | Message::Commit { .. }
            | Message::Rvc { .. } => wire::control_bytes(),
            Message::ViewChange { prepared, .. } => {
                wire::control_bytes()
                    + prepared
                        .iter()
                        .map(|p| wire::DIGEST_BYTES + 8 + p.batch.wire_size())
                        .sum::<usize>()
            }
            Message::NewView { preprepares, .. } => {
                wire::control_bytes()
                    + preprepares
                        .iter()
                        .map(|(_, b)| 8 + b.wire_size())
                        .sum::<usize>()
            }
            Message::GlobalShare { cert } => wire::HEADER_BYTES + cert.wire_size(),
            Message::OrderReq { batch, .. } => {
                wire::preprepare_bytes(batch.batch.len()) + wire::DIGEST_BYTES
            }
            Message::SpecResponse { .. } => {
                // A full response (result) plus the binding digests + sig.
                wire::control_bytes() + 2 * wire::DIGEST_BYTES
            }
            Message::ZyzCommit { sigs, .. } => {
                wire::control_bytes()
                    + sigs.len() * (wire::PUBKEY_BYTES + wire::SIG_BYTES)
                    + 2 * wire::DIGEST_BYTES
            }
            Message::HsProposal { batch, justify, .. } => {
                let base = match batch {
                    Some(b) => wire::preprepare_bytes(b.batch.len()),
                    None => wire::control_bytes(),
                };
                base + justify.as_ref().map_or(0, |qc| qc.wire_size())
            }
            Message::StewardProposal { cert, .. } => wire::HEADER_BYTES + cert.wire_size(),
            Message::StewardAccept { sigs, .. } => {
                wire::control_bytes() + sigs.len() * (wire::PUBKEY_BYTES + wire::SIG_BYTES)
            }
            Message::Noop => wire::HEADER_BYTES,
        }
    }

    /// Short label for statistics and traces.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Request(_) => "request",
            Message::Forward(_) => "forward",
            Message::Reply { .. } => "reply",
            Message::PrePrepare { .. } => "preprepare",
            Message::Prepare { .. } => "prepare",
            Message::Commit { .. } => "commit",
            Message::Checkpoint { .. } => "checkpoint",
            Message::ViewChange { .. } => "view-change",
            Message::NewView { .. } => "new-view",
            Message::GlobalShare { .. } => "global-share",
            Message::Drvc { .. } => "drvc",
            Message::Rvc { .. } => "rvc",
            Message::OrderReq { .. } => "order-req",
            Message::SpecResponse { .. } => "spec-response",
            Message::ZyzCommit { .. } => "zyz-commit",
            Message::LocalCommit { .. } => "local-commit",
            Message::HsProposal { .. } => "hs-proposal",
            Message::HsVote { .. } => "hs-vote",
            Message::StewardProposal { .. } => "steward-proposal",
            Message::StewardLocalAccept { .. } => "steward-local-accept",
            Message::StewardAccept { .. } => "steward-accept",
            Message::Noop => "noop",
        }
    }

    /// Whether an overloaded replica may shed this message instead of
    /// blocking its sender (the queue policy of the fabric's bounded input
    /// stage, and of the simulator's modeled queue).
    ///
    /// A BFT protocol already treats every replica-to-replica message as
    /// lossy: a shed message is indistinguishable from a network drop, and
    /// some retransmission path recovers it — the client's retry timer
    /// re-submits batches that never reach a reply quorum
    /// ([`Message::Forward`], [`Message::Reply`], [`Message::OrderReq`],
    /// speculative responses), and progress/view-change timers re-drive
    /// every ordering round ([`Message::PrePrepare`], [`Message::Prepare`],
    /// [`Message::Commit`], certificates, votes, view changes). Shedding
    /// them under overload is exactly the load-shedding the paper's fabric
    /// relies on to avoid queue collapse.
    ///
    /// Two exceptions exist. [`Message::Request`]: the client's original
    /// submission is the *admission edge* of the system. Shedding it would
    /// silently burn a full client retry timeout while the replica stays
    /// overloaded; blocking the submitting client instead is what
    /// propagates backpressure end to end (an overloaded deployment slows
    /// its clients rather than growing queues). Requests therefore always
    /// block on a full input queue, regardless of the stage's configured
    /// overload policy.
    ///
    /// And *pipeline-stage* checkpoint votes
    /// ([`crate::checkpoint::PIPELINE_CHECKPOINT_SCOPE`]): checkpoints
    /// are not retransmittable state — no timer re-drives them, so a shed
    /// vote could delay stability (and the garbage collection it gates)
    /// indefinitely. Their sender, the checkpoint stage, never *parks* on
    /// a peer's full inbox either (it holds the vote and retries), so the
    /// non-droppable classification cannot create a cross-replica
    /// blocking cycle. Consensus-engine checkpoints (`Global` /
    /// `Cluster(c)` scopes) stay droppable: the engines tolerate losing
    /// them (stability merely lags).
    pub fn droppable(&self) -> bool {
        match self {
            Message::Request(_) => false,
            Message::Checkpoint { scope, .. } => {
                *scope != crate::checkpoint::PIPELINE_CHECKPOINT_SCOPE
            }
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientBatch, Transaction};
    use rdb_store::{Operation, Value};

    fn batch(n: usize) -> SignedBatch {
        let client = ClientId::new(0, 0);
        SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: 0,
                txns: (0..n as u64)
                    .map(|i| Transaction {
                        client,
                        seq: i,
                        op: Operation::Write {
                            key: i,
                            value: Value::from_u64(i),
                        },
                    })
                    .collect(),
            },
            pubkey: Default::default(),
            sig: Default::default(),
        }
    }

    #[test]
    fn only_requests_and_pipeline_checkpoints_are_undroppable() {
        // The admission edge and non-retransmittable checkpoint votes
        // block; everything else is lossy-by-design (recovered by client
        // retry or protocol timers).
        assert!(!Message::Request(batch(1)).droppable());
        assert!(!crate::checkpoint::pipeline_vote(1, Digest::ZERO).droppable());
        assert!(Message::Checkpoint {
            scope: Scope::Global,
            seq: 1,
            state: Digest::ZERO,
        }
        .droppable());
        assert!(Message::Checkpoint {
            scope: Scope::Cluster(ClusterId(0)),
            seq: 1,
            state: Digest::ZERO,
        }
        .droppable());
        assert!(Message::Forward(batch(1)).droppable());
        assert!(Message::PrePrepare {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            digest: Digest::ZERO,
            batch: batch(1),
        }
        .droppable());
        assert!(Message::Prepare {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            digest: Digest::ZERO,
        }
        .droppable());
        assert!(Message::Noop.droppable());
    }

    #[test]
    fn preprepare_size_matches_paper_at_batch_100() {
        let m = Message::PrePrepare {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            digest: Digest::ZERO,
            batch: batch(100),
        };
        let sz = m.wire_size();
        assert!((5300..=5500).contains(&sz), "preprepare = {sz}");
    }

    #[test]
    fn control_messages_are_250_bytes() {
        let m = Message::Prepare {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            digest: Digest::ZERO,
        };
        assert_eq!(m.wire_size(), 250);
        let c = Message::Commit {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            digest: Digest::ZERO,
            sig: Signature::default(),
        };
        assert_eq!(c.wire_size(), 250);
    }

    #[test]
    fn reply_size_matches_paper_at_batch_100() {
        let m = Message::Reply {
            data: ReplyData {
                client: ClientId::new(0, 0),
                batch_seq: 0,
                seq: 1,
                block_height: 1,
                result_digest: Digest::ZERO,
                results: rdb_store::TxnEffect::default(),
                txns: 100,
            },
            view: 0,
        };
        let sz = m.wire_size();
        assert!((1400..=1600).contains(&sz), "reply = {sz}");
    }

    #[test]
    fn view_change_size_grows_with_prepared_set() {
        let empty = Message::ViewChange {
            scope: Scope::Global,
            new_view: 1,
            stable_seq: 0,
            prepared: vec![],
        };
        let loaded = Message::ViewChange {
            scope: Scope::Global,
            new_view: 1,
            stable_seq: 0,
            prepared: vec![PreparedProof {
                seq: 1,
                digest: Digest::ZERO,
                batch: batch(100),
            }],
        };
        assert!(loaded.wire_size() > empty.wire_size() + 5000);
    }

    #[test]
    fn qc_size_scales_with_votes() {
        let qc = |k: usize| HsQc {
            slot: 0,
            phase: HsPhase::Prepare,
            digest: Digest::ZERO,
            votes: (0..k as u16)
                .map(|i| (ReplicaId::new(0, i), Signature::default()))
                .collect(),
        };
        assert_eq!(
            qc(10).wire_size() - qc(5).wire_size(),
            5 * (wire::PUBKEY_BYTES + wire::SIG_BYTES)
        );
    }

    #[test]
    fn every_variant_has_a_label_and_size() {
        let msgs = vec![
            Message::Request(batch(1)),
            Message::Noop,
            Message::Drvc {
                target: ClusterId(0),
                round: 0,
                v: 0,
            },
            Message::Rvc {
                target: ClusterId(0),
                round: 0,
                v: 0,
                requester: ReplicaId::new(1, 0),
                sig: Signature::default(),
            },
        ];
        for m in msgs {
            assert!(!m.label().is_empty());
            assert!(m.wire_size() > 0);
        }
    }
}
