//! The sans-io protocol interface.
//!
//! Every consensus protocol in this crate (GeoBFT, PBFT, Zyzzyva, HotStuff,
//! Steward) is written as a *state machine with no I/O*: it receives
//! events — messages, timer expirations, client requests — and emits
//! [`Action`]s into an [`Outbox`]. The same state-machine code is driven by
//! two runtimes:
//!
//! * `rdb-simnet::Runner` — deterministic discrete-event simulation with a
//!   modeled network and compute costs (used for tests and to regenerate
//!   the paper's figures), and
//! * `resilientdb::Node` — the real multi-threaded pipelined fabric
//!   (paper Figure 9).

use crate::messages::Message;
use crate::types::Decision;
use rdb_common::ids::{ClusterId, NodeId, ReplicaId};
use rdb_common::time::{SimDuration, SimTime};

/// Identifies a protocol timer. Setting a timer with a kind that is already
/// armed re-arms it (the previous instance is superseded); cancelling an
/// unarmed kind is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimerKind {
    /// Client-side retransmission timer for the request with this sequence
    /// number.
    ClientRetry {
        /// Client-local request sequence number.
        seq: u64,
    },
    /// Replica-side progress timer: pending work exists and must complete
    /// before the timer fires, otherwise a (local) view change starts.
    Progress,
    /// GeoBFT: waiting for the commit certificate of `cluster` for `round`
    /// (§2.3: "every replica R ∈ C2 sets a timer for C1 at the start of
    /// round ρ").
    RemoteCluster {
        /// The cluster we expect a certificate from.
        cluster: ClusterId,
        /// The GeoBFT round the certificate is for.
        round: u64,
    },
    /// Zyzzyva client: deadline for gathering all `n` speculative
    /// responses before falling back to the commit phase.
    SpecWindow {
        /// Client-local request sequence number.
        seq: u64,
    },
    /// HotStuff: deadline for proposing a no-op when this replica's slot
    /// blocks the global execution order and it has no client batch.
    SlotNoOp {
        /// The blocked slot.
        slot: u64,
    },
    /// Steward representative: waiting for the global proposal to make
    /// progress.
    GlobalProgress,
}

/// An effect requested by a protocol state machine.
// `Send` dominates the size but is also ~all instances; boxing it would
// cost an allocation on the hottest path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Action {
    /// Send `msg` to `to`. Sends to self are legal and are delivered by
    /// the driver without network cost (loopback).
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// Arm (or re-arm) a timer to fire `after` from now.
    SetTimer {
        /// Timer identity.
        kind: TimerKind,
        /// Delay from the current virtual time.
        after: SimDuration,
    },
    /// Cancel a timer if armed.
    CancelTimer {
        /// Timer identity.
        kind: TimerKind,
    },
    /// A replica finalized and executed a decision. Consumed by the driver
    /// to append to the ledger and account throughput.
    Decided(Decision),
    /// A client completed a request (received the required matching
    /// replies). Consumed by the driver to measure latency and, in closed
    /// loop, to submit the next request.
    RequestComplete {
        /// Client-local sequence number of the completed request.
        seq: u64,
        /// Number of transactions in the completed batch.
        txns: usize,
    },
}

/// Collects the actions emitted while handling one event.
#[derive(Debug, Default)]
pub struct Outbox {
    actions: Vec<Action>,
}

impl Outbox {
    /// Fresh, empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queue a unicast.
    pub fn send(&mut self, to: impl Into<NodeId>, msg: Message) {
        self.actions.push(Action::Send { to: to.into(), msg });
    }

    /// Queue the same message to every target (clones per target).
    pub fn multicast<I, T>(&mut self, targets: I, msg: &Message)
    where
        I: IntoIterator<Item = T>,
        T: Into<NodeId>,
    {
        for t in targets {
            self.actions.push(Action::Send {
                to: t.into(),
                msg: msg.clone(),
            });
        }
    }

    /// Arm a timer.
    pub fn set_timer(&mut self, kind: TimerKind, after: SimDuration) {
        self.actions.push(Action::SetTimer { kind, after });
    }

    /// Cancel a timer.
    pub fn cancel_timer(&mut self, kind: TimerKind) {
        self.actions.push(Action::CancelTimer { kind });
    }

    /// Report a finalized decision.
    pub fn decided(&mut self, d: Decision) {
        self.actions.push(Action::Decided(d));
    }

    /// Report request completion (client side).
    pub fn request_complete(&mut self, seq: u64, txns: usize) {
        self.actions.push(Action::RequestComplete { seq, txns });
    }

    /// Queue a pre-built action. Used by protocol *wrappers* (see
    /// [`crate::adversary`]) that drain an inner protocol's outbox,
    /// transform some actions, and re-emit the rest unchanged.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Drain the accumulated actions.
    pub fn take(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Number of queued actions (for tests).
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions are queued.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Peek at the queued actions (for tests).
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }
}

/// A replica-side protocol state machine.
pub trait ReplicaProtocol: Send {
    /// This replica's identity.
    fn id(&self) -> ReplicaId;

    /// Called once before any other event, at virtual time zero (or node
    /// start). Protocols arm initial timers here.
    fn on_start(&mut self, now: SimTime, out: &mut Outbox);

    /// Handle a message from `from` (a replica or a client). Malformed or
    /// unverifiable messages must be dropped silently, per §2.1 ("Replicas
    /// will discard any messages that are not well-formed...").
    fn on_message(&mut self, now: SimTime, from: NodeId, msg: Message, out: &mut Outbox);

    /// Handle a timer expiration.
    fn on_timer(&mut self, now: SimTime, timer: TimerKind, out: &mut Outbox);
}

/// A client-side protocol state machine. Clients are closed-loop: the
/// driver calls [`ClientProtocol::next_request`] after start and after
/// every [`Action::RequestComplete`].
pub trait ClientProtocol: Send {
    /// This client's identity.
    fn id(&self) -> rdb_common::ids::ClientId;

    /// Ask the client to submit its next request. Returns `false` if the
    /// client has exhausted its workload.
    fn next_request(&mut self, now: SimTime, out: &mut Outbox) -> bool;

    /// Handle a reply-path message.
    fn on_message(&mut self, now: SimTime, from: NodeId, msg: Message, out: &mut Outbox);

    /// Handle a timer expiration (retransmissions, Zyzzyva fallbacks).
    fn on_timer(&mut self, now: SimTime, timer: TimerKind, out: &mut Outbox);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Message;
    use rdb_common::ids::ReplicaId;

    #[test]
    fn outbox_collects_and_drains() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.set_timer(TimerKind::Progress, SimDuration::from_millis(5));
        out.cancel_timer(TimerKind::Progress);
        assert_eq!(out.len(), 2);
        let actions = out.take();
        assert_eq!(actions.len(), 2);
        assert!(out.is_empty());
    }

    #[test]
    fn multicast_clones_to_each_target() {
        let mut out = Outbox::new();
        let targets: Vec<ReplicaId> = (0..3).map(|i| ReplicaId::new(0, i)).collect();
        out.multicast(targets, &Message::Noop);
        assert_eq!(out.len(), 3);
        for a in out.actions() {
            assert!(matches!(a, Action::Send { .. }));
        }
    }
}
