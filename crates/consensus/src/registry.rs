//! Factory functions mapping a [`ProtocolKind`] to concrete replica and
//! client state machines. Drivers (the simulator and the fabric) go
//! through these so that deployments are protocol-agnostic.

use crate::api::{ClientProtocol, ReplicaProtocol};
use crate::clients::{BatchSource, QuorumClient, TargetPolicy};
use crate::config::{ProtocolConfig, ProtocolKind};
use crate::crypto_ctx::CryptoCtx;
use crate::geobft::{GeoBftReplica, GeoFaults};
use crate::hotstuff::HotStuffReplica;
use crate::pbft::PbftReplica;
use crate::steward::StewardReplica;
use crate::zyzzyva::{ZyzzyvaClient, ZyzzyvaReplica};
use rdb_common::ids::{ClientId, ReplicaId};
use rdb_store::KvStore;

/// Build a replica state machine for `kind`.
pub fn build_replica(
    kind: ProtocolKind,
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    store: KvStore,
) -> Box<dyn ReplicaProtocol> {
    match kind {
        ProtocolKind::GeoBft => Box::new(GeoBftReplica::new(cfg, id, crypto, store)),
        ProtocolKind::Pbft => Box::new(PbftReplica::new(cfg, id, crypto, store)),
        ProtocolKind::Zyzzyva => Box::new(ZyzzyvaReplica::new(cfg, id, crypto, store)),
        ProtocolKind::HotStuff => Box::new(HotStuffReplica::new(cfg, id, crypto, store)),
        ProtocolKind::Steward => Box::new(StewardReplica::new(cfg, id, crypto, store)),
    }
}

/// Build a GeoBFT replica with fault injection (the other protocols model
/// failures as crashes, which the drivers inject by dropping delivery).
pub fn build_geobft_with_faults(
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    store: KvStore,
    faults: GeoFaults,
) -> Box<dyn ReplicaProtocol> {
    Box::new(GeoBftReplica::with_faults(cfg, id, crypto, store, faults))
}

/// Build a replica state machine for `kind`, optionally wrapped in
/// Byzantine behaviour (see [`crate::adversary`]). `None` builds the
/// honest replica, so deployment loops can apply per-replica specs
/// uniformly.
pub fn build_replica_with_adversary(
    kind: ProtocolKind,
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    store: KvStore,
    spec: Option<&crate::adversary::AdversarySpec>,
) -> Box<dyn ReplicaProtocol> {
    let inner = build_replica(kind, cfg, id, crypto, store);
    match spec {
        Some(spec) => crate::adversary::apply_adversary(inner, spec),
        None => inner,
    }
}

/// The number of matching replies a client of `kind` needs before
/// accepting a result.
pub fn reply_quorum(kind: ProtocolKind, cfg: &ProtocolConfig) -> usize {
    match kind {
        // Local f + 1 (§2.4: at most f faulty replicas per cluster, so one
        // of f + 1 identical local replies is from a non-faulty replica).
        ProtocolKind::GeoBft | ProtocolKind::Steward => cfg.system.weak_quorum(),
        // Global F + 1.
        ProtocolKind::Pbft | ProtocolKind::HotStuff => cfg.global_f() + 1,
        // Zyzzyva's client logic is bespoke (all n / 2F+1 paths).
        ProtocolKind::Zyzzyva => cfg.global_n(),
    }
}

/// Where a client of `kind` sends fresh requests and retransmissions
/// (see [`TargetPolicy`]). For Zyzzyva this is the policy of the session
/// layer; the bespoke [`ZyzzyvaClient`] itself always targets the global
/// primary.
pub fn target_policy(kind: ProtocolKind) -> TargetPolicy {
    match kind {
        ProtocolKind::GeoBft => TargetPolicy::LocalPrimary,
        ProtocolKind::Pbft | ProtocolKind::Zyzzyva => TargetPolicy::GlobalPrimary,
        ProtocolKind::HotStuff => TargetPolicy::HomeReplica,
        ProtocolKind::Steward => TargetPolicy::LocalRepresentative,
    }
}

/// Build a client state machine for `kind`.
pub fn build_client(
    kind: ProtocolKind,
    cfg: ProtocolConfig,
    id: ClientId,
    crypto: CryptoCtx,
    source: BatchSource,
) -> Box<dyn ClientProtocol> {
    let quorum = reply_quorum(kind, &cfg);
    match kind {
        ProtocolKind::Zyzzyva => Box::new(ZyzzyvaClient::new(id, cfg, crypto, source)),
        _ => Box::new(QuorumClient::new(
            id,
            cfg,
            crypto,
            target_policy(kind),
            quorum,
            source,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::synthetic_source;
    use rdb_common::config::SystemConfig;
    use rdb_common::ids::NodeId;
    use rdb_crypto::sign::KeyStore;

    #[test]
    fn all_kinds_build() {
        // Use a fresh keystore per protocol kind so replica ids can repeat.
        let system = SystemConfig::geo(2, 4).unwrap();
        let cfg = ProtocolConfig::new(system);
        for (i, kind) in ProtocolKind::ALL.iter().enumerate() {
            let ks = KeyStore::new(i as u64);
            let rid = ReplicaId::new(1, 0);
            let signer = ks.register(NodeId::Replica(rid));
            let crypto = CryptoCtx::new(signer, ks.verifier(), false);
            let r = build_replica(*kind, cfg.clone(), rid, crypto, KvStore::new());
            assert_eq!(r.id(), rid);

            let cid = ClientId::new(0, i as u32);
            let signer = ks.register(NodeId::Client(cid));
            let crypto = CryptoCtx::new(signer, ks.verifier(), false);
            let c = build_client(
                *kind,
                cfg.clone(),
                cid,
                crypto,
                synthetic_source(cid, 2, 10),
            );
            assert_eq!(c.id(), cid);
        }
    }

    #[test]
    fn reply_quorums_per_protocol() {
        let cfg = ProtocolConfig::new(SystemConfig::geo(4, 7).unwrap());
        // local f = 2 -> f+1 = 3; global N = 28, F = 9 -> F+1 = 10.
        assert_eq!(reply_quorum(ProtocolKind::GeoBft, &cfg), 3);
        assert_eq!(reply_quorum(ProtocolKind::Steward, &cfg), 3);
        assert_eq!(reply_quorum(ProtocolKind::Pbft, &cfg), 10);
        assert_eq!(reply_quorum(ProtocolKind::HotStuff, &cfg), 10);
        assert_eq!(reply_quorum(ProtocolKind::Zyzzyva, &cfg), 28);
    }
}
