//! In-crate test harness: synchronous message routing between protocol
//! state machines, without the discrete-event simulator.
//!
//! Only compiled for tests. Timers are ignored (tests trigger timeouts by
//! calling the timeout handlers directly), and messages are delivered in
//! FIFO order, which suffices for normal-case and view-change unit tests.

use crate::api::{Action, Outbox};
use crate::certificate::CommitSig;
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::messages::{Message, Scope};
use crate::pbft_core::{CoreEvent, PbftCore};
use crate::types::{ClientBatch, SignedBatch, Transaction};
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_crypto::sign::{KeyStore, Signer};
use rdb_store::{Operation, Value};
use std::collections::{HashMap, VecDeque};

/// Replies collected while routing a protocol network to quiescence.
pub(crate) type RoutedReplies = Vec<(ReplicaId, crate::types::ReplyData)>;
/// Decisions collected while routing a protocol network to quiescence.
pub(crate) type RoutedDecisions = Vec<(ReplicaId, crate::types::Decision)>;

/// A single-cluster test fixture of `n` PBFT cores with real crypto.
pub(crate) struct TestCluster {
    pub scope: Scope,
    pub ids: Vec<ReplicaId>,
    pub cores: Vec<PbftCore>,
    pub cryptos: Vec<CryptoCtx>,
    pub ks: KeyStore,
    client_signers: HashMap<ClientId, Signer>,
}

impl TestCluster {
    /// Build an `n`-replica cluster (cluster 0) with real signature
    /// checking.
    pub fn new(n: usize) -> TestCluster {
        let system = SystemConfig::geo(1, n).expect("valid test system");
        let cfg = ProtocolConfig::new(system.clone());
        let ks = KeyStore::new(0xFEED);
        let scope = Scope::Cluster(rdb_common::ids::ClusterId(0));
        let mut ids = Vec::new();
        let mut cores = Vec::new();
        let mut cryptos = Vec::new();
        for r in system.replicas_of(rdb_common::ids::ClusterId(0)) {
            let signer = ks.register(NodeId::Replica(r));
            let crypto = CryptoCtx::new(signer, ks.verifier(), true);
            ids.push(r);
            cryptos.push(crypto.clone());
            cores.push(PbftCore::new(scope, cfg.clone(), r, crypto));
        }
        TestCluster {
            scope,
            ids,
            cores,
            cryptos,
            ks,
            client_signers: HashMap::new(),
        }
    }

    /// Create (and cache) a signed batch from client `client_idx` with
    /// `txns` write transactions.
    pub fn signed_batch(&mut self, client_idx: u32, batch_seq: u64, txns: usize) -> SignedBatch {
        let client = ClientId::new(0, client_idx);
        let signer = self
            .client_signers
            .entry(client)
            .or_insert_with(|| self.ks.register(NodeId::Client(client)));
        let batch = ClientBatch {
            client,
            batch_seq,
            txns: (0..txns as u64)
                .map(|i| Transaction {
                    client,
                    seq: batch_seq * 1000 + i,
                    op: Operation::Write {
                        key: i,
                        value: Value::from_u64(batch_seq * 1000 + i),
                    },
                })
                .collect(),
        };
        let sig = signer.sign(batch.digest().as_bytes());
        SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch,
        }
    }
}

/// Route the actions of `initial` outboxes (paired with the index of the
/// core that produced them) until quiescence. Returns every
/// [`CoreEvent`] tagged with the index of the core that emitted it.
pub(crate) fn route_batches(
    cores: &mut [PbftCore],
    initial: Vec<(usize, Outbox)>,
    mut deliver_to: impl FnMut(usize) -> bool,
) -> Vec<(usize, CoreEvent)> {
    let mut queue: VecDeque<(usize, usize, Message)> = VecDeque::new();
    let index_of = |r: ReplicaId| r.index as usize;

    let push_actions = |from: usize, actions: Vec<Action>, queue: &mut VecDeque<_>| {
        for a in actions {
            if let Action::Send {
                to: NodeId::Replica(r),
                msg,
            } = a
            {
                queue.push_back((from, index_of(r), msg));
            }
        }
    };

    let mut events = Vec::new();
    for (from, mut out) in initial {
        push_actions(from, out.take(), &mut queue);
    }
    let mut steps = 0usize;
    while let Some((from, to, msg)) = queue.pop_front() {
        steps += 1;
        assert!(steps < 2_000_000, "routing did not quiesce");
        if !deliver_to(to) {
            continue;
        }
        let from_id = cores[from].id();
        let mut out = Outbox::new();
        let evs = cores[to].handle_message(from_id, msg, &mut out);
        for e in evs {
            events.push((to, e));
        }
        push_actions(to, out.take(), &mut queue);
    }
    events
}

/// Route until quiescent, delivering everything; the initial outbox is
/// attributed to core 0.
pub(crate) fn route_core_messages(cores: &mut [PbftCore], out: Outbox) -> Vec<(usize, CoreEvent)> {
    route_batches(cores, vec![(0, out)], |_| true)
}

/// Build a commit-certificate fixture from core `Committed` output.
#[allow(dead_code)]
pub(crate) fn cert_from_commit(
    cluster: rdb_common::ids::ClusterId,
    seq: u64,
    batch: &SignedBatch,
    commits: &[CommitSig],
) -> crate::certificate::CommitCertificate {
    crate::certificate::CommitCertificate {
        cluster,
        round: seq,
        digest: batch.digest(),
        batch: batch.clone(),
        commits: commits.to_vec(),
    }
}
