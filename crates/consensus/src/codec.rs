//! Hand-rolled binary wire codec: [`Message`] ⇄ length-prefixed frames.
//!
//! The socket transport (`resilientdb::socket`) needs real bytes on a
//! real socket, but the repro's bandwidth accounting is calibrated
//! against the *modeled* sizes in [`rdb_common::wire`] (§4 of the paper:
//! 5.4 kB pre-prepares, 250 B control messages, ...). This codec keeps
//! the two in agreement by construction:
//!
//! * every message is encoded as a compact tag + little-endian binary
//!   payload (the same idiom as [`TxnProgram::canonical_bytes`] — no
//!   serde, no crates.io), and then
//! * the frame is **padded with zeros up to
//!   [`Message::wire_size`]** whenever the compact encoding comes out
//!   smaller — which it does for every YCSB-shaped message, because the
//!   model charges the paper's field layout (52 B/txn, 128 B/commit,
//!   14 B/result) while the compact encoding is tighter (47, 68 and
//!   1–26 B respectively).
//!
//! The result: the frame for any message is exactly
//! `wire_size() + FRAME_OVERHEAD` bytes on the socket, so per-link byte
//! counters measured on a real deployment reproduce the simulator's
//! bandwidth model without a separate calibration table. Two documented
//! exceptions grow past the model (the frame simply gets bigger, padding
//! zero): register-machine programs ([`Operation::Txn`]) whose
//! instruction streams exceed the modeled 52 B/txn, and read-heavy
//! replies whose `ReadValue(Some(_))` outcomes (26 B) exceed the modeled
//! 14 B/result.
//!
//! # Frame layout
//!
//! ```text
//! [len: u32 LE]              total bytes after this field
//! [from: NodeId, 7 B]        tag(1) + cluster(2) + index(4)
//! [to:   NodeId, 7 B]
//! [payload_len: u32 LE]      compact encoding length (≤ len - 18)
//! [payload: payload_len B]   tagged Message encoding
//! [padding: zeros]           up to max(payload_len, msg.wire_size())
//! ```
//!
//! [`FRAME_OVERHEAD`] is the fixed 22-byte header (4 + 7 + 7 + 4).
//! Decoding reads `payload_len`, decodes the payload, and skips the
//! padding — a corrupt, truncated or oversized frame yields a
//! [`CodecError`], never a panic, and the length prefix keeps the stream
//! in sync (the reader always knows where the next frame starts).

use crate::certificate::{CommitCertificate, CommitSig};
use crate::messages::{HsPhase, HsQc, Message, PreparedProof, Scope};
use crate::types::{ClientBatch, ReplyData, SignedBatch, Transaction};
use rdb_common::ids::{ClientId, ClusterId, NodeId, ReplicaId};
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::{PublicKey, Signature};
use rdb_store::{
    Cmp, ExecOutcome, Operation, TxnAbort, TxnEffect, TxnInstr, TxnOutcome, TxnProgram, Value,
};

/// Encoded bytes of a [`NodeId`]: tag + cluster + 32-bit index.
pub const NODE_ID_BYTES: usize = 7;

/// Fixed frame header: length prefix + from + to + payload length.
pub const FRAME_OVERHEAD: usize = 4 + 2 * NODE_ID_BYTES + 4;

/// Upper bound on a frame body (the bytes after the length prefix). A
/// peer claiming more is corrupt or hostile; the reader rejects the
/// frame before allocating. Generous: the largest honest message is a
/// view change carrying a window of full batches (~100 kB).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a decode failed. Every malformed input maps to one of these —
/// decoding never panics and never reads past the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the encoding did.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Which enum the tag belonged to.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A claimed length exceeds [`MAX_FRAME`] or the bytes actually
    /// present.
    BadLength {
        /// Which field carried the length.
        what: &'static str,
        /// The claimed value.
        claimed: u64,
    },
    /// The payload decoded cleanly but bytes were left over (a desynced
    /// or tampered stream).
    TrailingBytes,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::BadLength { what, claimed } => {
                write!(f, "bad {what} length {claimed}")
            }
            CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.bytes(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Read an element count and validate it against the bytes actually
    /// left (`min_elem` is the smallest possible encoding of one
    /// element) — so a corrupt count can never trigger a huge
    /// allocation.
    fn len(&mut self, what: &'static str, min_elem: usize) -> Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(CodecError::BadLength {
                what,
                claimed: n as u64,
            });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_node(out: &mut Vec<u8>, n: NodeId) {
    match n {
        NodeId::Replica(r) => {
            out.push(0);
            put_u16(out, r.cluster.0);
            put_u32(out, r.index as u32);
        }
        NodeId::Client(c) => {
            out.push(1);
            put_u16(out, c.cluster.0);
            put_u32(out, c.index);
        }
    }
}

fn put_replica(out: &mut Vec<u8>, r: ReplicaId) {
    put_u16(out, r.cluster.0);
    put_u16(out, r.index);
}

fn put_client(out: &mut Vec<u8>, c: ClientId) {
    put_u16(out, c.cluster.0);
    put_u32(out, c.index);
}

fn put_scope(out: &mut Vec<u8>, s: Scope) {
    match s {
        Scope::Global => {
            out.push(0);
            put_u16(out, 0);
        }
        Scope::Cluster(c) => {
            out.push(1);
            put_u16(out, c.0);
        }
    }
}

fn put_op(out: &mut Vec<u8>, op: &Operation) {
    match op {
        Operation::Write { key, value } => {
            out.push(0);
            put_u64(out, *key);
            out.extend_from_slice(&value.0);
        }
        Operation::Read { key } => {
            out.push(1);
            put_u64(out, *key);
        }
        Operation::Rmw { key, delta } => {
            out.push(2);
            put_u64(out, *key);
            put_u64(out, *delta);
        }
        Operation::Insert { key, value } => {
            out.push(3);
            put_u64(out, *key);
            out.extend_from_slice(&value.0);
        }
        Operation::Scan { key, count } => {
            out.push(4);
            put_u64(out, *key);
            put_u32(out, *count);
        }
        Operation::NoOp => out.push(5),
        Operation::Txn(prog) => {
            out.push(6);
            put_u32(out, prog.instrs.len() as u32);
            for i in &prog.instrs {
                put_instr(out, i);
            }
        }
    }
}

fn put_instr(out: &mut Vec<u8>, i: &TxnInstr) {
    match i {
        TxnInstr::Read { dst, key } => {
            out.push(0);
            out.push(*dst);
            put_u64(out, *key);
        }
        TxnInstr::Write { key, src } => {
            out.push(1);
            out.push(*src);
            put_u64(out, *key);
        }
        TxnInstr::Set { dst, imm } => {
            out.push(2);
            out.push(*dst);
            put_u64(out, *imm);
        }
        TxnInstr::Add { dst, src } => {
            out.push(3);
            out.push(*dst);
            out.push(*src);
        }
        TxnInstr::Sub { dst, src } => {
            out.push(4);
            out.push(*dst);
            out.push(*src);
        }
        TxnInstr::BranchIf { a, cmp, b, skip } => {
            out.push(5);
            out.push(*a);
            out.push(match cmp {
                Cmp::Eq => 0,
                Cmp::Ne => 1,
                Cmp::Lt => 2,
                Cmp::Le => 3,
                Cmp::Gt => 4,
                Cmp::Ge => 5,
            });
            out.push(*b);
            out.push(*skip);
        }
        TxnInstr::Abort { code } => {
            out.push(6);
            put_u32(out, *code);
        }
        TxnInstr::Halt => out.push(7),
    }
}

fn put_txn(out: &mut Vec<u8>, t: &Transaction) {
    put_client(out, t.client);
    put_u64(out, t.seq);
    put_op(out, &t.op);
}

fn put_batch(out: &mut Vec<u8>, b: &ClientBatch) {
    put_client(out, b.client);
    put_u64(out, b.batch_seq);
    put_u32(out, b.txns.len() as u32);
    for t in &b.txns {
        put_txn(out, t);
    }
}

fn put_signed_batch(out: &mut Vec<u8>, sb: &SignedBatch) {
    put_batch(out, &sb.batch);
    out.extend_from_slice(&sb.pubkey.0);
    out.extend_from_slice(&sb.sig.0);
}

fn put_outcome(out: &mut Vec<u8>, o: &ExecOutcome) {
    match o {
        ExecOutcome::Done => out.push(0),
        ExecOutcome::ReadValue(None) => out.push(1),
        ExecOutcome::ReadValue(Some(v)) => {
            out.push(2);
            out.extend_from_slice(&v.0);
        }
        ExecOutcome::Counter(c) => {
            out.push(3);
            put_u64(out, *c);
        }
        ExecOutcome::Scanned(n) => {
            out.push(4);
            put_u32(out, *n);
        }
        ExecOutcome::Txn(t) => {
            out.push(5);
            // Reuse the canonical digest encoding: tag + LE payload.
            out.extend_from_slice(&t.canonical_bytes());
        }
    }
}

fn put_effect(out: &mut Vec<u8>, e: &TxnEffect) {
    put_u32(out, e.outcomes.len() as u32);
    for o in &e.outcomes {
        put_outcome(out, o);
    }
}

fn put_reply_data(out: &mut Vec<u8>, d: &ReplyData) {
    put_client(out, d.client);
    put_u64(out, d.batch_seq);
    put_u64(out, d.seq);
    put_u64(out, d.block_height);
    out.extend_from_slice(&d.result_digest.0);
    put_effect(out, &d.results);
    put_u32(out, d.txns);
}

fn put_cert(out: &mut Vec<u8>, c: &CommitCertificate) {
    put_u16(out, c.cluster.0);
    put_u64(out, c.round);
    out.extend_from_slice(&c.digest.0);
    put_signed_batch(out, &c.batch);
    put_u32(out, c.commits.len() as u32);
    for cs in &c.commits {
        put_replica(out, cs.replica);
        out.extend_from_slice(&cs.sig.0);
    }
}

fn put_phase(out: &mut Vec<u8>, p: HsPhase) {
    out.push(match p {
        HsPhase::Prepare => 0,
        HsPhase::PreCommit => 1,
        HsPhase::Commit => 2,
        HsPhase::Decide => 3,
    });
}

fn put_votes(out: &mut Vec<u8>, votes: &[(ReplicaId, Signature)]) {
    put_u32(out, votes.len() as u32);
    for (r, s) in votes {
        put_replica(out, *r);
        out.extend_from_slice(&s.0);
    }
}

fn put_qc(out: &mut Vec<u8>, qc: &HsQc) {
    put_u64(out, qc.slot);
    put_phase(out, qc.phase);
    out.extend_from_slice(&qc.digest.0);
    put_votes(out, &qc.votes);
}

/// Append the compact encoding of `msg` to `out`. Total and
/// deterministic: identical messages encode to identical bytes.
pub fn encode_message(out: &mut Vec<u8>, msg: &Message) {
    match msg {
        Message::Request(sb) => {
            out.push(0);
            put_signed_batch(out, sb);
        }
        Message::Forward(sb) => {
            out.push(1);
            put_signed_batch(out, sb);
        }
        Message::Reply { data, view } => {
            out.push(2);
            put_reply_data(out, data);
            put_u64(out, *view);
        }
        Message::PrePrepare {
            scope,
            view,
            seq,
            batch,
            digest,
        } => {
            out.push(3);
            put_scope(out, *scope);
            put_u64(out, *view);
            put_u64(out, *seq);
            put_signed_batch(out, batch);
            out.extend_from_slice(&digest.0);
        }
        Message::Prepare {
            scope,
            view,
            seq,
            digest,
        } => {
            out.push(4);
            put_scope(out, *scope);
            put_u64(out, *view);
            put_u64(out, *seq);
            out.extend_from_slice(&digest.0);
        }
        Message::Commit {
            scope,
            view,
            seq,
            digest,
            sig,
        } => {
            out.push(5);
            put_scope(out, *scope);
            put_u64(out, *view);
            put_u64(out, *seq);
            out.extend_from_slice(&digest.0);
            out.extend_from_slice(&sig.0);
        }
        Message::Checkpoint { scope, seq, state } => {
            out.push(6);
            put_scope(out, *scope);
            put_u64(out, *seq);
            out.extend_from_slice(&state.0);
        }
        Message::ViewChange {
            scope,
            new_view,
            stable_seq,
            prepared,
        } => {
            out.push(7);
            put_scope(out, *scope);
            put_u64(out, *new_view);
            put_u64(out, *stable_seq);
            put_u32(out, prepared.len() as u32);
            for p in prepared {
                put_u64(out, p.seq);
                out.extend_from_slice(&p.digest.0);
                put_signed_batch(out, &p.batch);
            }
        }
        Message::NewView {
            scope,
            view,
            preprepares,
            stable_seq,
        } => {
            out.push(8);
            put_scope(out, *scope);
            put_u64(out, *view);
            put_u64(out, *stable_seq);
            put_u32(out, preprepares.len() as u32);
            for (seq, sb) in preprepares {
                put_u64(out, *seq);
                put_signed_batch(out, sb);
            }
        }
        Message::GlobalShare { cert } => {
            out.push(9);
            put_cert(out, cert);
        }
        Message::Drvc { target, round, v } => {
            out.push(10);
            put_u16(out, target.0);
            put_u64(out, *round);
            put_u64(out, *v);
        }
        Message::Rvc {
            target,
            round,
            v,
            requester,
            sig,
        } => {
            out.push(11);
            put_u16(out, target.0);
            put_u64(out, *round);
            put_u64(out, *v);
            put_replica(out, *requester);
            out.extend_from_slice(&sig.0);
        }
        Message::OrderReq {
            view,
            seq,
            batch,
            history,
        } => {
            out.push(12);
            put_u64(out, *view);
            put_u64(out, *seq);
            put_signed_batch(out, batch);
            out.extend_from_slice(&history.0);
        }
        Message::SpecResponse {
            view,
            seq,
            batch_seq,
            replica,
            digest,
            history,
            result,
            results,
            sig,
        } => {
            out.push(13);
            put_u64(out, *view);
            put_u64(out, *seq);
            put_u64(out, *batch_seq);
            put_replica(out, *replica);
            out.extend_from_slice(&digest.0);
            out.extend_from_slice(&history.0);
            out.extend_from_slice(&result.0);
            put_effect(out, results);
            out.extend_from_slice(&sig.0);
        }
        Message::ZyzCommit {
            client,
            batch_seq,
            view,
            seq,
            digest,
            history,
            sigs,
        } => {
            out.push(14);
            put_client(out, *client);
            put_u64(out, *batch_seq);
            put_u64(out, *view);
            put_u64(out, *seq);
            out.extend_from_slice(&digest.0);
            out.extend_from_slice(&history.0);
            put_votes(out, sigs);
        }
        Message::LocalCommit {
            view,
            seq,
            batch_seq,
            replica,
        } => {
            out.push(15);
            put_u64(out, *view);
            put_u64(out, *seq);
            put_u64(out, *batch_seq);
            put_replica(out, *replica);
        }
        Message::HsProposal {
            slot,
            phase,
            batch,
            digest,
            justify,
        } => {
            out.push(16);
            put_u64(out, *slot);
            put_phase(out, *phase);
            match batch {
                None => out.push(0),
                Some(sb) => {
                    out.push(1);
                    put_signed_batch(out, sb);
                }
            }
            out.extend_from_slice(&digest.0);
            match justify {
                None => out.push(0),
                Some(qc) => {
                    out.push(1);
                    put_qc(out, qc);
                }
            }
        }
        Message::HsVote {
            slot,
            phase,
            digest,
            replica,
            sig,
        } => {
            out.push(17);
            put_u64(out, *slot);
            put_phase(out, *phase);
            out.extend_from_slice(&digest.0);
            put_replica(out, *replica);
            out.extend_from_slice(&sig.0);
        }
        Message::StewardProposal { seq, cert } => {
            out.push(18);
            put_u64(out, *seq);
            put_cert(out, cert);
        }
        Message::StewardLocalAccept {
            seq,
            digest,
            replica,
            sig,
        } => {
            out.push(19);
            put_u64(out, *seq);
            out.extend_from_slice(&digest.0);
            put_replica(out, *replica);
            out.extend_from_slice(&sig.0);
        }
        Message::StewardAccept {
            seq,
            cluster,
            digest,
            sigs,
        } => {
            out.push(20);
            put_u64(out, *seq);
            put_u16(out, cluster.0);
            out.extend_from_slice(&digest.0);
            put_votes(out, sigs);
        }
        Message::Noop => out.push(21),
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn get_node(r: &mut Reader) -> Result<NodeId> {
    let tag = r.u8()?;
    let cluster = ClusterId(r.u16()?);
    let index = r.u32()?;
    match tag {
        0 => {
            let index = u16::try_from(index).map_err(|_| CodecError::BadLength {
                what: "replica index",
                claimed: index as u64,
            })?;
            Ok(NodeId::Replica(ReplicaId { cluster, index }))
        }
        1 => Ok(NodeId::Client(ClientId { cluster, index })),
        tag => Err(CodecError::BadTag {
            what: "node id",
            tag,
        }),
    }
}

fn get_replica(r: &mut Reader) -> Result<ReplicaId> {
    Ok(ReplicaId {
        cluster: ClusterId(r.u16()?),
        index: r.u16()?,
    })
}

fn get_client(r: &mut Reader) -> Result<ClientId> {
    Ok(ClientId {
        cluster: ClusterId(r.u16()?),
        index: r.u32()?,
    })
}

fn get_scope(r: &mut Reader) -> Result<Scope> {
    let tag = r.u8()?;
    let cluster = r.u16()?;
    match tag {
        0 => Ok(Scope::Global),
        1 => Ok(Scope::Cluster(ClusterId(cluster))),
        tag => Err(CodecError::BadTag { what: "scope", tag }),
    }
}

fn get_digest(r: &mut Reader) -> Result<Digest> {
    Ok(Digest(r.array()?))
}

fn get_sig(r: &mut Reader) -> Result<Signature> {
    Ok(Signature(r.array()?))
}

fn get_value(r: &mut Reader) -> Result<Value> {
    Ok(Value(r.array()?))
}

fn get_op(r: &mut Reader) -> Result<Operation> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Operation::Write {
            key: r.u64()?,
            value: get_value(r)?,
        },
        1 => Operation::Read { key: r.u64()? },
        2 => Operation::Rmw {
            key: r.u64()?,
            delta: r.u64()?,
        },
        3 => Operation::Insert {
            key: r.u64()?,
            value: get_value(r)?,
        },
        4 => Operation::Scan {
            key: r.u64()?,
            count: r.u32()?,
        },
        5 => Operation::NoOp,
        6 => {
            let n = r.len("program instrs", 1)?;
            let mut instrs = Vec::with_capacity(n);
            for _ in 0..n {
                instrs.push(get_instr(r)?);
            }
            Operation::Txn(TxnProgram::new(instrs))
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "operation",
                tag,
            })
        }
    })
}

fn get_instr(r: &mut Reader) -> Result<TxnInstr> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => TxnInstr::Read {
            dst: r.u8()?,
            key: r.u64()?,
        },
        1 => {
            let src = r.u8()?;
            TxnInstr::Write { key: r.u64()?, src }
        }
        2 => TxnInstr::Set {
            dst: r.u8()?,
            imm: r.u64()?,
        },
        3 => TxnInstr::Add {
            dst: r.u8()?,
            src: r.u8()?,
        },
        4 => TxnInstr::Sub {
            dst: r.u8()?,
            src: r.u8()?,
        },
        5 => {
            let a = r.u8()?;
            let cmp = match r.u8()? {
                0 => Cmp::Eq,
                1 => Cmp::Ne,
                2 => Cmp::Lt,
                3 => Cmp::Le,
                4 => Cmp::Gt,
                5 => Cmp::Ge,
                tag => return Err(CodecError::BadTag { what: "cmp", tag }),
            };
            TxnInstr::BranchIf {
                a,
                cmp,
                b: r.u8()?,
                skip: r.u8()?,
            }
        }
        6 => TxnInstr::Abort { code: r.u32()? },
        7 => TxnInstr::Halt,
        tag => return Err(CodecError::BadTag { what: "instr", tag }),
    })
}

fn get_txn(r: &mut Reader) -> Result<Transaction> {
    Ok(Transaction {
        client: get_client(r)?,
        seq: r.u64()?,
        op: get_op(r)?,
    })
}

fn get_batch(r: &mut Reader) -> Result<ClientBatch> {
    let client = get_client(r)?;
    let batch_seq = r.u64()?;
    // Smallest txn: client(6) + seq(8) + NoOp tag(1).
    let n = r.len("batch txns", 15)?;
    let mut txns = Vec::with_capacity(n);
    for _ in 0..n {
        txns.push(get_txn(r)?);
    }
    Ok(ClientBatch {
        client,
        batch_seq,
        txns,
    })
}

fn get_signed_batch(r: &mut Reader) -> Result<SignedBatch> {
    Ok(SignedBatch {
        batch: get_batch(r)?,
        pubkey: PublicKey(r.array()?),
        sig: get_sig(r)?,
    })
}

fn get_outcome(r: &mut Reader) -> Result<ExecOutcome> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => ExecOutcome::Done,
        1 => ExecOutcome::ReadValue(None),
        2 => ExecOutcome::ReadValue(Some(get_value(r)?)),
        3 => ExecOutcome::Counter(r.u64()?),
        4 => ExecOutcome::Scanned(r.u32()?),
        5 => {
            // Mirrors TxnOutcome::canonical_bytes.
            match r.u8()? {
                0 => ExecOutcome::Txn(TxnOutcome::Committed { ret: r.u64()? }),
                1 => {
                    let abort = match r.u8()? {
                        0 => TxnAbort::Underflow { pc: r.u32()? },
                        1 => TxnAbort::Overflow { pc: r.u32()? },
                        2 => TxnAbort::Explicit {
                            code: r.u32()?,
                            pc: r.u32()?,
                        },
                        3 => TxnAbort::Invalid { pc: r.u32()? },
                        tag => {
                            return Err(CodecError::BadTag {
                                what: "txn abort",
                                tag,
                            })
                        }
                    };
                    ExecOutcome::Txn(TxnOutcome::Aborted(abort))
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "txn outcome",
                        tag,
                    })
                }
            }
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "exec outcome",
                tag,
            })
        }
    })
}

fn get_effect(r: &mut Reader) -> Result<TxnEffect> {
    let n = r.len("effect outcomes", 1)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        outcomes.push(get_outcome(r)?);
    }
    Ok(TxnEffect { outcomes })
}

fn get_reply_data(r: &mut Reader) -> Result<ReplyData> {
    Ok(ReplyData {
        client: get_client(r)?,
        batch_seq: r.u64()?,
        seq: r.u64()?,
        block_height: r.u64()?,
        result_digest: get_digest(r)?,
        results: get_effect(r)?,
        txns: r.u32()?,
    })
}

fn get_cert(r: &mut Reader) -> Result<CommitCertificate> {
    let cluster = ClusterId(r.u16()?);
    let round = r.u64()?;
    let digest = get_digest(r)?;
    let batch = get_signed_batch(r)?;
    // One commit = replica(4) + sig(64).
    let n = r.len("cert commits", 68)?;
    let mut commits = Vec::with_capacity(n);
    for _ in 0..n {
        commits.push(CommitSig {
            replica: get_replica(r)?,
            sig: get_sig(r)?,
        });
    }
    Ok(CommitCertificate {
        cluster,
        round,
        digest,
        batch,
        commits,
    })
}

fn get_phase(r: &mut Reader) -> Result<HsPhase> {
    match r.u8()? {
        0 => Ok(HsPhase::Prepare),
        1 => Ok(HsPhase::PreCommit),
        2 => Ok(HsPhase::Commit),
        3 => Ok(HsPhase::Decide),
        tag => Err(CodecError::BadTag { what: "phase", tag }),
    }
}

fn get_votes(r: &mut Reader) -> Result<Vec<(ReplicaId, Signature)>> {
    let n = r.len("votes", 68)?;
    let mut votes = Vec::with_capacity(n);
    for _ in 0..n {
        votes.push((get_replica(r)?, get_sig(r)?));
    }
    Ok(votes)
}

fn get_qc(r: &mut Reader) -> Result<HsQc> {
    Ok(HsQc {
        slot: r.u64()?,
        phase: get_phase(r)?,
        digest: get_digest(r)?,
        votes: get_votes(r)?,
    })
}

fn get_message(r: &mut Reader) -> Result<Message> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Message::Request(get_signed_batch(r)?),
        1 => Message::Forward(get_signed_batch(r)?),
        2 => Message::Reply {
            data: get_reply_data(r)?,
            view: r.u64()?,
        },
        3 => Message::PrePrepare {
            scope: get_scope(r)?,
            view: r.u64()?,
            seq: r.u64()?,
            batch: get_signed_batch(r)?,
            digest: get_digest(r)?,
        },
        4 => Message::Prepare {
            scope: get_scope(r)?,
            view: r.u64()?,
            seq: r.u64()?,
            digest: get_digest(r)?,
        },
        5 => Message::Commit {
            scope: get_scope(r)?,
            view: r.u64()?,
            seq: r.u64()?,
            digest: get_digest(r)?,
            sig: get_sig(r)?,
        },
        6 => Message::Checkpoint {
            scope: get_scope(r)?,
            seq: r.u64()?,
            state: get_digest(r)?,
        },
        7 => {
            let scope = get_scope(r)?;
            let new_view = r.u64()?;
            let stable_seq = r.u64()?;
            // One proof: seq(8) + digest(32) + minimal batch(114).
            let n = r.len("prepared proofs", 154)?;
            let mut prepared = Vec::with_capacity(n);
            for _ in 0..n {
                prepared.push(PreparedProof {
                    seq: r.u64()?,
                    digest: get_digest(r)?,
                    batch: get_signed_batch(r)?,
                });
            }
            Message::ViewChange {
                scope,
                new_view,
                stable_seq,
                prepared,
            }
        }
        8 => {
            let scope = get_scope(r)?;
            let view = r.u64()?;
            let stable_seq = r.u64()?;
            // One entry: seq(8) + minimal batch(114).
            let n = r.len("new-view preprepares", 122)?;
            let mut preprepares = Vec::with_capacity(n);
            for _ in 0..n {
                preprepares.push((r.u64()?, get_signed_batch(r)?));
            }
            Message::NewView {
                scope,
                view,
                preprepares,
                stable_seq,
            }
        }
        9 => Message::GlobalShare { cert: get_cert(r)? },
        10 => Message::Drvc {
            target: ClusterId(r.u16()?),
            round: r.u64()?,
            v: r.u64()?,
        },
        11 => Message::Rvc {
            target: ClusterId(r.u16()?),
            round: r.u64()?,
            v: r.u64()?,
            requester: get_replica(r)?,
            sig: get_sig(r)?,
        },
        12 => Message::OrderReq {
            view: r.u64()?,
            seq: r.u64()?,
            batch: get_signed_batch(r)?,
            history: get_digest(r)?,
        },
        13 => Message::SpecResponse {
            view: r.u64()?,
            seq: r.u64()?,
            batch_seq: r.u64()?,
            replica: get_replica(r)?,
            digest: get_digest(r)?,
            history: get_digest(r)?,
            result: get_digest(r)?,
            results: get_effect(r)?,
            sig: get_sig(r)?,
        },
        14 => Message::ZyzCommit {
            client: get_client(r)?,
            batch_seq: r.u64()?,
            view: r.u64()?,
            seq: r.u64()?,
            digest: get_digest(r)?,
            history: get_digest(r)?,
            sigs: get_votes(r)?,
        },
        15 => Message::LocalCommit {
            view: r.u64()?,
            seq: r.u64()?,
            batch_seq: r.u64()?,
            replica: get_replica(r)?,
        },
        16 => {
            let slot = r.u64()?;
            let phase = get_phase(r)?;
            let batch = match r.u8()? {
                0 => None,
                1 => Some(get_signed_batch(r)?),
                tag => {
                    return Err(CodecError::BadTag {
                        what: "option batch",
                        tag,
                    })
                }
            };
            let digest = get_digest(r)?;
            let justify = match r.u8()? {
                0 => None,
                1 => Some(get_qc(r)?),
                tag => {
                    return Err(CodecError::BadTag {
                        what: "option qc",
                        tag,
                    })
                }
            };
            Message::HsProposal {
                slot,
                phase,
                batch,
                digest,
                justify,
            }
        }
        17 => Message::HsVote {
            slot: r.u64()?,
            phase: get_phase(r)?,
            digest: get_digest(r)?,
            replica: get_replica(r)?,
            sig: get_sig(r)?,
        },
        18 => Message::StewardProposal {
            seq: r.u64()?,
            cert: get_cert(r)?,
        },
        19 => Message::StewardLocalAccept {
            seq: r.u64()?,
            digest: get_digest(r)?,
            replica: get_replica(r)?,
            sig: get_sig(r)?,
        },
        20 => Message::StewardAccept {
            seq: r.u64()?,
            cluster: ClusterId(r.u16()?),
            digest: get_digest(r)?,
            sigs: get_votes(r)?,
        },
        21 => Message::Noop,
        tag => {
            return Err(CodecError::BadTag {
                what: "message",
                tag,
            })
        }
    })
}

/// Decode a compact [`Message`] encoding. The whole buffer must be
/// consumed ([`CodecError::TrailingBytes`] otherwise).
pub fn decode_message(buf: &[u8]) -> Result<Message> {
    let mut r = Reader::new(buf);
    let msg = get_message(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes);
    }
    Ok(msg)
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// A reusable frame encoder: one allocation amortized over every send on
/// a connection (the `pipeline-serialize` bench measures what this
/// buys over per-send allocation).
#[derive(Default)]
pub struct WireCodec {
    buf: Vec<u8>,
}

impl WireCodec {
    /// A codec with an empty scratch buffer.
    pub fn new() -> WireCodec {
        WireCodec::default()
    }

    /// Encode `(from, to, msg)` as one complete frame (length prefix
    /// included), reusing the internal buffer. The returned slice is
    /// valid until the next call.
    pub fn encode_frame(&mut self, from: NodeId, to: NodeId, msg: &Message) -> &[u8] {
        self.buf.clear();
        encode_frame_into(&mut self.buf, from, to, msg);
        &self.buf
    }
}

/// Append one complete frame to `out` (see the module docs for the
/// layout). The body is padded with zeros up to [`Message::wire_size`],
/// so the frame is `wire_size() + FRAME_OVERHEAD` bytes for every
/// message whose compact encoding fits the model.
pub fn encode_frame_into(out: &mut Vec<u8>, from: NodeId, to: NodeId, msg: &Message) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    put_node(out, from);
    put_node(out, to);
    let payload_len_at = out.len();
    put_u32(out, 0); // patched below
    let payload_at = out.len();
    encode_message(out, msg);
    let payload_len = out.len() - payload_at;
    let padded = payload_len.max(msg.wire_size());
    out.resize(payload_at + padded, 0);
    let body_len = (out.len() - len_at - 4) as u32;
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    out[payload_len_at..payload_len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
}

/// Decode a frame *body* (the bytes after the length prefix) into
/// `(from, to, msg)`. Padding past the payload must be zero-filled by
/// the encoder but is deliberately not validated — skipping it keeps
/// decode O(payload).
pub fn decode_frame_body(body: &[u8]) -> Result<(NodeId, NodeId, Message)> {
    let mut r = Reader::new(body);
    let from = get_node(&mut r)?;
    let to = get_node(&mut r)?;
    let payload_len = r.u32()? as usize;
    if payload_len > r.remaining() {
        return Err(CodecError::BadLength {
            what: "payload",
            claimed: payload_len as u64,
        });
    }
    let payload = r.bytes(payload_len)?;
    let msg = decode_message(payload)?;
    Ok((from, to, msg))
}

/// Append the fixed [`NODE_ID_BYTES`] encoding of a node id (the
/// socket handshake exchanges bare node ids outside any frame).
pub fn encode_node_id(out: &mut Vec<u8>, n: NodeId) {
    put_node(out, n);
}

/// Decode a [`NODE_ID_BYTES`] node id.
pub fn decode_node_id(bytes: &[u8; NODE_ID_BYTES]) -> Result<NodeId> {
    let mut r = Reader::new(bytes);
    let n = get_node(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes);
    }
    Ok(n)
}

/// The full on-socket size of the frame `encode_frame_into` produces for
/// `msg`: the modeled wire size (or the compact encoding when larger)
/// plus [`FRAME_OVERHEAD`].
pub fn frame_size(msg: &Message) -> usize {
    let mut payload = Vec::new();
    encode_message(&mut payload, msg);
    FRAME_OVERHEAD + payload.len().max(msg.wire_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rdb_common::wire;

    fn roundtrip(msg: &Message) {
        let mut out = Vec::new();
        let from: NodeId = ReplicaId::new(2, 3).into();
        let to: NodeId = ClientId::new(1, 9).into();
        encode_frame_into(&mut out, from, to, msg);
        assert_eq!(
            out.len(),
            frame_size(msg),
            "frame_size must predict the encoder for {}",
            msg.label()
        );
        let body_len = u32::from_le_bytes(out[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, out.len() - 4);
        let (f, t, decoded) = decode_frame_body(&out[4..]).expect("decode");
        assert_eq!(f, from);
        assert_eq!(t, to);
        assert_eq!(&decoded, msg, "roundtrip mismatch for {}", msg.label());
    }

    fn sig(b: u8) -> Signature {
        Signature([b; 64])
    }

    fn digest(b: u8) -> Digest {
        Digest([b; 32])
    }

    fn batch(n: usize) -> SignedBatch {
        let client = ClientId::new(1, 7);
        SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: 3,
                txns: (0..n as u64)
                    .map(|i| Transaction {
                        client,
                        seq: i,
                        op: Operation::Write {
                            key: i,
                            value: Value::from_u64(i),
                        },
                    })
                    .collect(),
            },
            pubkey: PublicKey([9; 32]),
            sig: sig(4),
        }
    }

    fn cert(b: usize, c: usize) -> CommitCertificate {
        CommitCertificate {
            cluster: ClusterId(1),
            round: 5,
            digest: digest(6),
            batch: batch(b),
            commits: (0..c as u16)
                .map(|i| CommitSig {
                    replica: ReplicaId::new(0, i),
                    sig: sig(i as u8),
                })
                .collect(),
        }
    }

    /// One exemplar per variant — the fixed sweep backing the proptest
    /// (which fuzzes the payload-heavy variants more deeply).
    fn exemplars() -> Vec<Message> {
        vec![
            Message::Request(batch(3)),
            Message::Forward(batch(1)),
            Message::Reply {
                data: ReplyData {
                    client: ClientId::new(0, 2),
                    batch_seq: 1,
                    seq: 2,
                    block_height: 3,
                    result_digest: digest(1),
                    results: TxnEffect {
                        outcomes: vec![
                            ExecOutcome::Done,
                            ExecOutcome::ReadValue(None),
                            ExecOutcome::ReadValue(Some(Value::from_u64(7))),
                            ExecOutcome::Counter(8),
                            ExecOutcome::Scanned(2),
                            ExecOutcome::Txn(TxnOutcome::Committed { ret: 4 }),
                            ExecOutcome::Txn(TxnOutcome::Aborted(TxnAbort::Underflow { pc: 2 })),
                            ExecOutcome::Txn(TxnOutcome::Aborted(TxnAbort::Overflow { pc: 3 })),
                            ExecOutcome::Txn(TxnOutcome::Aborted(TxnAbort::Explicit {
                                code: 9,
                                pc: 1,
                            })),
                            ExecOutcome::Txn(TxnOutcome::Aborted(TxnAbort::Invalid { pc: 0 })),
                        ],
                    },
                    txns: 10,
                },
                view: 4,
            },
            Message::PrePrepare {
                scope: Scope::Cluster(ClusterId(2)),
                view: 1,
                seq: 2,
                batch: batch(2),
                digest: digest(2),
            },
            Message::Prepare {
                scope: Scope::Global,
                view: 1,
                seq: 2,
                digest: digest(3),
            },
            Message::Commit {
                scope: Scope::Cluster(ClusterId(0)),
                view: 1,
                seq: 2,
                digest: digest(4),
                sig: sig(5),
            },
            Message::Checkpoint {
                scope: Scope::Global,
                seq: 10,
                state: digest(5),
            },
            Message::ViewChange {
                scope: Scope::Global,
                new_view: 2,
                stable_seq: 5,
                prepared: vec![PreparedProof {
                    seq: 6,
                    digest: digest(6),
                    batch: batch(1),
                }],
            },
            Message::NewView {
                scope: Scope::Cluster(ClusterId(1)),
                view: 2,
                preprepares: vec![(7, batch(1)), (8, batch(0))],
                stable_seq: 5,
            },
            Message::GlobalShare { cert: cert(2, 3) },
            Message::Drvc {
                target: ClusterId(3),
                round: 9,
                v: 1,
            },
            Message::Rvc {
                target: ClusterId(3),
                round: 9,
                v: 1,
                requester: ReplicaId::new(1, 2),
                sig: sig(7),
            },
            Message::OrderReq {
                view: 1,
                seq: 2,
                batch: batch(2),
                history: digest(7),
            },
            Message::SpecResponse {
                view: 1,
                seq: 2,
                batch_seq: 3,
                replica: ReplicaId::new(0, 1),
                digest: digest(8),
                history: digest(9),
                result: digest(10),
                results: TxnEffect::default(),
                sig: sig(8),
            },
            Message::ZyzCommit {
                client: ClientId::new(0, 4),
                batch_seq: 3,
                view: 1,
                seq: 2,
                digest: digest(11),
                history: digest(12),
                sigs: vec![
                    (ReplicaId::new(0, 0), sig(1)),
                    (ReplicaId::new(0, 1), sig(2)),
                ],
            },
            Message::LocalCommit {
                view: 1,
                seq: 2,
                batch_seq: 3,
                replica: ReplicaId::new(0, 2),
            },
            Message::HsProposal {
                slot: 4,
                phase: HsPhase::PreCommit,
                batch: Some(batch(1)),
                digest: digest(13),
                justify: Some(HsQc {
                    slot: 3,
                    phase: HsPhase::Prepare,
                    digest: digest(14),
                    votes: vec![(ReplicaId::new(0, 0), sig(3))],
                }),
            },
            Message::HsProposal {
                slot: 4,
                phase: HsPhase::Decide,
                batch: None,
                digest: digest(13),
                justify: None,
            },
            Message::HsVote {
                slot: 4,
                phase: HsPhase::Commit,
                digest: digest(15),
                replica: ReplicaId::new(0, 3),
                sig: sig(9),
            },
            Message::StewardProposal {
                seq: 5,
                cert: cert(1, 2),
            },
            Message::StewardLocalAccept {
                seq: 5,
                digest: digest(16),
                replica: ReplicaId::new(1, 0),
                sig: sig(10),
            },
            Message::StewardAccept {
                seq: 5,
                cluster: ClusterId(2),
                digest: digest(17),
                sigs: vec![(ReplicaId::new(2, 0), sig(11))],
            },
            Message::Noop,
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        let msgs = exemplars();
        // Every Message variant must appear (a new variant without a
        // codec arm should fail here, not in production).
        let labels: std::collections::BTreeSet<_> = msgs.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 22, "exemplar sweep must cover all variants");
        for m in &msgs {
            roundtrip(m);
        }
    }

    #[test]
    fn txn_program_operations_roundtrip() {
        let client = ClientId::new(0, 1);
        let ops = [
            Operation::Read { key: 3 },
            Operation::Rmw { key: 4, delta: 9 },
            Operation::Insert {
                key: 5,
                value: Value::from_u64(6),
            },
            Operation::Scan { key: 7, count: 11 },
            Operation::NoOp,
            Operation::Txn(TxnProgram::transfer_checked(1, 2, 30)),
            Operation::Txn(TxnProgram::new(vec![
                TxnInstr::Abort { code: 77 },
                TxnInstr::Halt,
            ])),
        ];
        for (i, op) in ops.into_iter().enumerate() {
            roundtrip(&Message::Request(SignedBatch {
                batch: ClientBatch {
                    client,
                    batch_seq: i as u64,
                    txns: vec![Transaction { client, seq: 1, op }],
                },
                pubkey: PublicKey::default(),
                sig: Signature::default(),
            }));
        }
    }

    /// The acceptance criterion: PrePrepare / certificate / response
    /// frames land exactly at the `rdb_common::wire` model plus the
    /// documented fixed header.
    #[test]
    fn frame_sizes_match_wire_model() {
        let pp = Message::PrePrepare {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            batch: batch(100),
            digest: digest(0),
        };
        assert_eq!(
            frame_size(&pp),
            wire::preprepare_bytes(100) + FRAME_OVERHEAD
        );

        let share = Message::GlobalShare { cert: cert(100, 7) };
        assert_eq!(
            frame_size(&share),
            wire::HEADER_BYTES + wire::certificate_bytes(100, 7) + FRAME_OVERHEAD
        );

        let reply = Message::Reply {
            data: ReplyData {
                client: ClientId::new(0, 0),
                batch_seq: 0,
                seq: 1,
                block_height: 1,
                result_digest: digest(0),
                results: TxnEffect {
                    outcomes: vec![ExecOutcome::Done; 100],
                },
                txns: 100,
            },
            view: 0,
        };
        assert_eq!(
            frame_size(&reply),
            wire::response_bytes(100) + FRAME_OVERHEAD
        );

        let prepare = Message::Prepare {
            scope: Scope::Global,
            view: 0,
            seq: 0,
            digest: digest(0),
        };
        assert_eq!(frame_size(&prepare), wire::control_bytes() + FRAME_OVERHEAD);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        for msg in exemplars() {
            let mut out = Vec::new();
            let from: NodeId = ReplicaId::new(0, 0).into();
            encode_frame_into(&mut out, from, from, &msg);
            let body = &out[4..];
            // Every strict prefix of the body must fail cleanly (the
            // padding region may decode fine at full payload length, so
            // stop before payload end).
            let mut payload_end = 18;
            let mut r = Reader::new(&body[14..18]);
            payload_end += r.u32().unwrap() as usize;
            for cut in 0..payload_end.min(body.len()) {
                assert!(
                    decode_frame_body(&body[..cut]).is_err(),
                    "prefix {cut} of {} decoded",
                    msg.label()
                );
            }
        }
    }

    #[test]
    fn corrupt_tags_error_not_panic() {
        let mut out = Vec::new();
        let from: NodeId = ReplicaId::new(0, 0).into();
        encode_frame_into(&mut out, from, from, &Message::Request(batch(2)));
        let body = out[4..].to_vec();
        // Flip every byte of the body in turn: decode must never panic,
        // and must either error or produce *some* message (a flipped
        // payload byte inside a value field legitimately decodes to a
        // different message).
        for i in 0..body.len() {
            let mut corrupt = body.clone();
            corrupt[i] ^= 0xFF;
            let _ = decode_frame_body(&corrupt);
        }
        // A bad message tag specifically must be a BadTag error.
        let mut corrupt = body.clone();
        corrupt[18] = 0xEE; // message tag right after from/to/payload_len
        assert!(matches!(
            decode_frame_body(&corrupt),
            Err(CodecError::BadTag {
                what: "message",
                ..
            })
        ));
    }

    #[test]
    fn oversized_counts_error_before_allocating() {
        // A Request frame claiming u32::MAX transactions but carrying
        // only a few bytes must be rejected by the length check.
        let mut body = Vec::new();
        put_node(&mut body, ReplicaId::new(0, 0).into());
        put_node(&mut body, ReplicaId::new(0, 1).into());
        let mut payload = Vec::new();
        payload.push(0u8); // Request
        put_client(&mut payload, ClientId::new(0, 0));
        put_u64(&mut payload, 1); // batch_seq
        put_u32(&mut payload, u32::MAX); // txn count
        put_u32(&mut body, payload.len() as u32);
        body.extend_from_slice(&payload);
        assert_eq!(
            decode_frame_body(&body),
            Err(CodecError::BadLength {
                what: "batch txns",
                claimed: u32::MAX as u64,
            })
        );
    }

    #[test]
    fn trailing_bytes_in_payload_error() {
        let mut out = Vec::new();
        let from: NodeId = ReplicaId::new(0, 0).into();
        encode_frame_into(&mut out, from, from, &Message::Noop);
        let mut body = out[4..].to_vec();
        // Claim the whole padded region as payload: Noop decodes, then
        // the padding is trailing garbage.
        let claimed = (body.len() - 18) as u32;
        body[14..18].copy_from_slice(&claimed.to_le_bytes());
        assert_eq!(decode_frame_body(&body), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn codec_buffer_is_reused() {
        let mut codec = WireCodec::new();
        let from: NodeId = ReplicaId::new(0, 0).into();
        let a = codec.encode_frame(from, from, &Message::Noop).to_vec();
        let big = Message::Request(batch(50));
        let _ = codec.encode_frame(from, from, &big);
        let b = codec.encode_frame(from, from, &Message::Noop).to_vec();
        assert_eq!(a, b, "reused buffer must not leak previous frames");
    }

    // Property: encode → decode is the identity over randomized
    // payload-heavy messages (batches of arbitrary ops, certificates,
    // replies with arbitrary outcome lists).
    fn arb_value() -> impl Strategy<Value = Value> {
        any::<u64>().prop_map(Value::from_u64)
    }

    fn arb_op() -> impl Strategy<Value = Operation> {
        prop_oneof![
            (any::<u64>(), arb_value()).prop_map(|(key, value)| Operation::Write { key, value }),
            any::<u64>().prop_map(|key| Operation::Read { key }),
            (any::<u64>(), any::<u64>()).prop_map(|(key, delta)| Operation::Rmw { key, delta }),
            (any::<u64>(), arb_value()).prop_map(|(key, value)| Operation::Insert { key, value }),
            (any::<u64>(), any::<u32>()).prop_map(|(key, count)| Operation::Scan { key, count }),
            Just(Operation::NoOp),
            (any::<u64>(), any::<u64>(), 1u64..1000)
                .prop_map(|(a, b, amt)| Operation::Txn(TxnProgram::transfer(a, b, amt))),
        ]
    }

    fn arb_batch() -> impl Strategy<Value = SignedBatch> {
        (
            (any::<u16>(), any::<u32>()),
            any::<u64>(),
            proptest::collection::vec(arb_op(), 0..8),
            any::<u8>(),
        )
            .prop_map(|((cluster, index), batch_seq, ops, sb)| {
                let client = ClientId::new(cluster, index);
                SignedBatch {
                    batch: ClientBatch {
                        client,
                        batch_seq,
                        txns: ops
                            .into_iter()
                            .enumerate()
                            .map(|(i, op)| Transaction {
                                client,
                                seq: i as u64,
                                op,
                            })
                            .collect(),
                    },
                    pubkey: PublicKey([sb; 32]),
                    sig: Signature([sb.wrapping_add(1); 64]),
                }
            })
    }

    fn arb_outcome() -> impl Strategy<Value = ExecOutcome> {
        prop_oneof![
            Just(ExecOutcome::Done),
            Just(ExecOutcome::ReadValue(None)),
            arb_value().prop_map(|v| ExecOutcome::ReadValue(Some(v))),
            any::<u64>().prop_map(ExecOutcome::Counter),
            any::<u32>().prop_map(ExecOutcome::Scanned),
            any::<u64>().prop_map(|ret| ExecOutcome::Txn(TxnOutcome::Committed { ret })),
            any::<u32>()
                .prop_map(|pc| ExecOutcome::Txn(TxnOutcome::Aborted(TxnAbort::Underflow { pc }))),
            (any::<u32>(), any::<u32>()).prop_map(|(code, pc)| ExecOutcome::Txn(
                TxnOutcome::Aborted(TxnAbort::Explicit { code, pc })
            )),
        ]
    }

    fn arb_message() -> impl Strategy<Value = Message> {
        prop_oneof![
            arb_batch().prop_map(Message::Request),
            arb_batch().prop_map(Message::Forward),
            (arb_batch(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                |(batch, view, seq, d)| Message::PrePrepare {
                    scope: if d % 2 == 0 {
                        Scope::Global
                    } else {
                        Scope::Cluster(ClusterId(d as u16))
                    },
                    view,
                    seq,
                    digest: batch.digest(),
                    batch,
                }
            ),
            (
                arb_batch(),
                proptest::collection::vec(arb_outcome(), 0..6),
                any::<u64>()
            )
                .prop_map(|(b, outcomes, view)| {
                    Message::Reply {
                        data: ReplyData {
                            client: b.batch.client,
                            batch_seq: b.batch.batch_seq,
                            seq: view.wrapping_add(1),
                            block_height: view.wrapping_add(2),
                            result_digest: b.digest(),
                            results: TxnEffect { outcomes },
                            txns: b.batch.len() as u32,
                        },
                        view,
                    }
                }),
            (arb_batch(), 0usize..5, any::<u64>()).prop_map(|(batch, commits, round)| {
                Message::GlobalShare {
                    cert: CommitCertificate {
                        cluster: ClusterId(round as u16 % 7),
                        round,
                        digest: batch.digest(),
                        batch,
                        commits: (0..commits as u16)
                            .map(|i| CommitSig {
                                replica: ReplicaId::new(0, i),
                                sig: Signature([i as u8; 64]),
                            })
                            .collect(),
                    },
                }
            }),
            (arb_batch(), any::<u64>(), 0usize..4).prop_map(|(batch, v, n)| {
                Message::ViewChange {
                    scope: Scope::Global,
                    new_view: v,
                    stable_seq: v / 2,
                    prepared: (0..n as u64)
                        .map(|seq| PreparedProof {
                            seq,
                            digest: batch.digest(),
                            batch: batch.clone(),
                        })
                        .collect(),
                }
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn encode_decode_is_identity(msg in arb_message()) {
            let mut out = Vec::new();
            let from: NodeId = ReplicaId::new(1, 1).into();
            let to: NodeId = ReplicaId::new(0, 2).into();
            encode_frame_into(&mut out, from, to, &msg);
            prop_assert_eq!(out.len(), frame_size(&msg));
            let (f, t, decoded) = decode_frame_body(&out[4..]).unwrap();
            prop_assert_eq!(f, from);
            prop_assert_eq!(t, to);
            prop_assert_eq!(decoded, msg);
        }

        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Arbitrary garbage must decode to Ok or Err, never panic.
            let _ = decode_frame_body(&bytes);
            let _ = decode_message(&bytes);
        }
    }
}
