//! Protocol-level configuration shared by all five protocols.

use rdb_common::config::SystemConfig;
use rdb_common::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which consensus protocol a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// The paper's contribution (§2).
    GeoBft,
    /// Castro & Liskov's PBFT across all `z·n` replicas.
    Pbft,
    /// Kotla et al.'s speculative protocol.
    Zyzzyva,
    /// Yin et al.'s HotStuff, as implemented in the paper (§3): parallel
    /// primaries, no threshold signatures, no pacemaker.
    HotStuff,
    /// Amir et al.'s hierarchical wide-area protocol with a primary
    /// cluster.
    Steward,
}

impl ProtocolKind {
    /// All protocols, in the order the paper's figures list them.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::GeoBft,
        ProtocolKind::Pbft,
        ProtocolKind::Zyzzyva,
        ProtocolKind::HotStuff,
        ProtocolKind::Steward,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::GeoBft => "GeoBFT",
            ProtocolKind::Pbft => "Pbft",
            ProtocolKind::Zyzzyva => "Zyzzyva",
            ProtocolKind::HotStuff => "HotStuff",
            ProtocolKind::Steward => "Steward",
        }
    }

    /// Whether the protocol's consensus groups are per-cluster (GeoBFT,
    /// Steward) rather than one global group.
    pub fn is_topology_aware(&self) -> bool {
        matches!(self, ProtocolKind::GeoBft | ProtocolKind::Steward)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether replicas apply transactions to a real `KvStore` or only model
/// the execution cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Apply every operation to the store (integration tests, fabric).
    Real,
    /// Skip store mutation; execution cost is still charged in virtual
    /// time by the simulator (figure-scale simulations).
    Modeled,
}

/// Tunables shared by every protocol implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// The deployment (z clusters × n replicas, regions).
    pub system: SystemConfig,
    /// Transactions per client batch (the paper's "batch size", default
    /// 100 — §4).
    pub batch_size: usize,
    /// Decisions between checkpoints. The paper checkpoints every 600
    /// client transactions; with batch 100 that is every 6 decisions. We
    /// express it in decisions directly.
    pub checkpoint_interval: u64,
    /// Maximum in-flight (proposed but not stably checkpointed) sequence
    /// numbers: the PBFT high-watermark window, which also bounds
    /// out-of-order pipelining (§2.5).
    pub window: u64,
    /// Real vs modeled execution.
    pub exec_mode: ExecMode,
    /// Replica progress timeout before starting a (local) view change.
    pub progress_timeout: SimDuration,
    /// GeoBFT: initial timeout waiting for a remote cluster's certificate;
    /// doubled on each failure (exponential back-off, §2.3).
    pub remote_timeout: SimDuration,
    /// Client retransmission timeout.
    pub client_retry: SimDuration,
    /// Ceiling on the client's exponential retransmission back-off: each
    /// timeout doubles `client_retry` but never past this cap. Unbounded
    /// doubling would make a client that raced through a few timeouts
    /// (e.g. across a long partition) effectively stop retransmitting —
    /// capped, it keeps probing the replicas at a bounded cadence.
    pub client_retry_cap: SimDuration,
    /// Zyzzyva: how long a client waits for all `n` speculative responses
    /// before falling back to the commit phase.
    pub spec_window: SimDuration,
    /// GeoBFT: how many replicas of each remote cluster the primary sends
    /// certificates to. `None` means the protocol-correct `f + 1`
    /// (Figure 5); the fanout ablation (E9) overrides it.
    pub fanout_override: Option<usize>,
}

impl ProtocolConfig {
    /// Defaults mirroring the paper's evaluation setup.
    pub fn new(system: SystemConfig) -> ProtocolConfig {
        ProtocolConfig {
            system,
            batch_size: 100,
            checkpoint_interval: 6,
            window: 48,
            exec_mode: ExecMode::Modeled,
            progress_timeout: SimDuration::from_millis(2_000),
            remote_timeout: SimDuration::from_millis(1_500),
            client_retry: SimDuration::from_millis(4_000),
            // 4 s base: 4 doublings reach the minute-scale cap — far
            // beyond any experiment window, so figure reproductions are
            // unaffected, but a real deployment's retry cadence stays
            // bounded.
            client_retry_cap: SimDuration::from_secs(60),
            spec_window: SimDuration::from_millis(150),
            fanout_override: None,
        }
    }

    /// Total replica count `N = z·n` (the group size of the single-log
    /// protocols).
    pub fn global_n(&self) -> usize {
        self.system.total_replicas()
    }

    /// Failures tolerated by the single-log protocols: `F = ⌊(N-1)/3⌋`
    /// (Remark 2.1: these protocols tolerate more total failures than
    /// GeoBFT/Steward but are not topology-aware).
    pub fn global_f(&self) -> usize {
        self.system.global_f()
    }

    /// Strong quorum of the single-log protocols: `N - F`.
    pub fn global_quorum(&self) -> usize {
        self.system.global_quorum()
    }

    /// GeoBFT inter-cluster sharing fanout (Figure 5: `f + 1`).
    pub fn sharing_fanout(&self) -> usize {
        self.fanout_override
            .unwrap_or(self.system.weak_quorum())
            .clamp(1, self.system.replicas_per_cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_quorums_match_remark_2_1() {
        // n = 13, z = 7: single-log protocols tolerate 30 failures,
        // GeoBFT/Steward tolerate f*z = 28 (Remark 2.1).
        let cfg = ProtocolConfig::new(SystemConfig::geo(7, 13).unwrap());
        assert_eq!(cfg.global_n(), 91);
        assert_eq!(cfg.global_f(), 30);
        assert_eq!(cfg.global_quorum(), 61);
        assert_eq!(cfg.system.f() * cfg.system.z(), 28);
    }

    #[test]
    fn default_fanout_is_f_plus_1() {
        let cfg = ProtocolConfig::new(SystemConfig::geo(4, 7).unwrap());
        assert_eq!(cfg.sharing_fanout(), 3); // f = 2
        let mut ablate = cfg.clone();
        ablate.fanout_override = Some(1);
        assert_eq!(ablate.sharing_fanout(), 1);
        ablate.fanout_override = Some(100);
        assert_eq!(ablate.sharing_fanout(), 7); // clamped to n
    }

    #[test]
    fn protocol_names_match_figures() {
        let names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["GeoBFT", "Pbft", "Zyzzyva", "HotStuff", "Steward"]);
        assert!(ProtocolKind::GeoBft.is_topology_aware());
        assert!(ProtocolKind::Steward.is_topology_aware());
        assert!(!ProtocolKind::Pbft.is_topology_aware());
    }
}
