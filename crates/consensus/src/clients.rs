//! The generic closed-loop client used by PBFT, GeoBFT, HotStuff and
//! Steward (Zyzzyva's speculative client lives in [`crate::zyzzyva`]).
//!
//! A client submits one batch at a time, waits for a quorum of *matching*
//! replies (same result digest from distinct replicas), reports completion
//! and is then asked by the driver for its next batch — exactly the
//! closed-loop behaviour of the paper's YCSB clients. On timeout it
//! retransmits, broadcasting so that replicas forward to the current
//! primary and start view-change pressure (§2.2).

use crate::api::{ClientProtocol, Outbox, TimerKind};
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::messages::Message;
use crate::types::{ClientBatch, SignedBatch};
use rdb_common::ids::{ClientId, NodeId, ReplicaId};
use rdb_common::time::{SimDuration, SimTime};
use rdb_crypto::digest::Digest;
use std::collections::HashMap;

/// Where a client sends fresh requests and retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetPolicy {
    /// Send to the primary of the global group (PBFT, Zyzzyva). Learned
    /// from the `view` field of replies.
    GlobalPrimary,
    /// Send to the primary of the client's local cluster (GeoBFT). §2:
    /// "GeoBFT assigns each client to a single cluster."
    LocalPrimary,
    /// Send to a fixed home replica chosen by client index (HotStuff's
    /// parallel primaries).
    HomeReplica,
    /// Send to the local cluster representative, who forwards to the
    /// primary cluster (Steward).
    LocalRepresentative,
}

/// Produces the client's next batch of transactions. Implemented by the
/// workload generator (`rdb-workload`).
pub type BatchSource = Box<dyn FnMut(u64) -> ClientBatch + Send>;

/// The replica a fresh request from `id` goes to under `policy` (given
/// the client's current primary hint). Shared by [`QuorumClient`] and the
/// fabric's open-loop client sessions, so both enter the system through
/// the same admission edge.
pub fn entry_target(
    policy: TargetPolicy,
    sys: &rdb_common::config::SystemConfig,
    id: ClientId,
    view_hint: u64,
) -> ReplicaId {
    match policy {
        TargetPolicy::GlobalPrimary => {
            let members: Vec<ReplicaId> = sys.all_replicas().collect();
            members[(view_hint % members.len() as u64) as usize]
        }
        TargetPolicy::LocalPrimary => sys.primary_of(id.cluster, view_hint),
        TargetPolicy::HomeReplica => {
            let members: Vec<ReplicaId> = sys.all_replicas().collect();
            members[(id.index as usize) % members.len()]
        }
        TargetPolicy::LocalRepresentative => ReplicaId {
            cluster: id.cluster,
            index: 0,
        },
    }
}

/// The retransmission broadcast set of a client under `policy`: its local
/// cluster for topology-aware protocols, everyone for global ones.
pub fn retry_targets(
    policy: TargetPolicy,
    sys: &rdb_common::config::SystemConfig,
    id: ClientId,
) -> Vec<ReplicaId> {
    match policy {
        TargetPolicy::GlobalPrimary | TargetPolicy::HomeReplica => sys.all_replicas().collect(),
        TargetPolicy::LocalPrimary | TargetPolicy::LocalRepresentative => {
            sys.replicas_of(id.cluster).collect()
        }
    }
}

/// In-flight request state.
struct Outstanding {
    seq: u64,
    signed: SignedBatch,
    /// result digest -> replicas that reported it.
    replies: HashMap<Digest, Vec<ReplicaId>>,
    retries: u32,
}

/// The generic quorum client.
pub struct QuorumClient {
    id: ClientId,
    cfg: ProtocolConfig,
    crypto: CryptoCtx,
    policy: TargetPolicy,
    /// Matching replies needed (f+1 local for GeoBFT/Steward, F+1 global
    /// for PBFT/HotStuff).
    reply_quorum: usize,
    source: BatchSource,
    next_seq: u64,
    view_hint: u64,
    outstanding: Option<Outstanding>,
    retry_timeout: SimDuration,
}

impl QuorumClient {
    /// Create a client. `reply_quorum` is protocol-specific; see
    /// [`crate::registry`].
    pub fn new(
        id: ClientId,
        cfg: ProtocolConfig,
        crypto: CryptoCtx,
        policy: TargetPolicy,
        reply_quorum: usize,
        source: BatchSource,
    ) -> QuorumClient {
        let retry_timeout = cfg.client_retry;
        QuorumClient {
            id,
            cfg,
            crypto,
            policy,
            reply_quorum,
            source,
            next_seq: 0,
            view_hint: 0,
            outstanding: None,
            retry_timeout,
        }
    }

    /// The replica a fresh request goes to under the current policy.
    fn entry_target(&self) -> ReplicaId {
        entry_target(self.policy, &self.cfg.system, self.id, self.view_hint)
    }

    /// The retransmission broadcast set: local cluster for topology-aware
    /// protocols, everyone for global ones.
    fn retry_targets(&self) -> Vec<ReplicaId> {
        retry_targets(self.policy, &self.cfg.system, self.id)
    }
}

impl ClientProtocol for QuorumClient {
    fn id(&self) -> ClientId {
        self.id
    }

    fn next_request(&mut self, _now: SimTime, out: &mut Outbox) -> bool {
        debug_assert!(self.outstanding.is_none(), "closed loop violated");
        let seq = self.next_seq;
        self.next_seq += 1;
        let batch = (self.source)(seq);
        debug_assert_eq!(batch.client, self.id);
        let digest = batch.digest();
        let signed = SignedBatch {
            sig: self.crypto.sign(digest.as_bytes()),
            pubkey: self.crypto.public_key(),
            batch,
        };
        self.outstanding = Some(Outstanding {
            seq,
            signed: signed.clone(),
            replies: HashMap::new(),
            retries: 0,
        });
        self.retry_timeout = self.cfg.client_retry;
        out.send(self.entry_target(), Message::Request(signed));
        out.set_timer(TimerKind::ClientRetry { seq }, self.retry_timeout);
        true
    }

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        let Message::Reply { data, view } = msg else {
            return;
        };
        let NodeId::Replica(replica) = from else {
            return;
        };
        self.view_hint = self.view_hint.max(view);
        let Some(outst) = self.outstanding.as_mut() else {
            return;
        };
        if data.batch_seq != outst.seq || data.client != self.id {
            return;
        }
        let voters = outst.replies.entry(data.result_digest).or_default();
        if voters.contains(&replica) {
            return;
        }
        voters.push(replica);
        if voters.len() >= self.reply_quorum {
            let seq = outst.seq;
            let txns = outst.signed.batch.len();
            self.outstanding = None;
            out.cancel_timer(TimerKind::ClientRetry { seq });
            out.request_complete(seq, txns);
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer: TimerKind, out: &mut Outbox) {
        let TimerKind::ClientRetry { seq } = timer else {
            return;
        };
        let Some(outst) = self.outstanding.as_mut() else {
            return;
        };
        if outst.seq != seq {
            return;
        }
        outst.retries += 1;
        // §2.2: a client whose request stalls broadcasts it; replicas
        // forward to the primary, which either proposes it or gets view-
        // changed away.
        let msg = Message::Request(outst.signed.clone());
        let targets = self.retry_targets();
        out.multicast(targets, &msg);
        // Exponential back-off, capped: unbounded doubling would let a
        // long outage push the next retransmission arbitrarily far out.
        self.retry_timeout = self.retry_timeout.doubled().min(self.cfg.client_retry_cap);
        out.set_timer(TimerKind::ClientRetry { seq }, self.retry_timeout);
    }
}

/// A trivial batch source for tests and examples: `count` write
/// transactions round-robining over `keys` keys.
pub fn synthetic_source(client: ClientId, count: usize, keys: u64) -> BatchSource {
    Box::new(move |batch_seq| ClientBatch {
        client,
        batch_seq,
        txns: (0..count as u64)
            .map(|i| crate::types::Transaction {
                client,
                seq: batch_seq * count as u64 + i,
                op: rdb_store::Operation::Write {
                    key: (batch_seq * 31 + i * 7) % keys,
                    value: rdb_store::Value::from_u64(batch_seq * 1000 + i),
                },
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ReplyData;
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;

    fn client(policy: TargetPolicy, quorum: usize) -> QuorumClient {
        let cfg = ProtocolConfig::new(SystemConfig::geo(2, 4).unwrap());
        let ks = KeyStore::new(3);
        let id = ClientId::new(1, 5);
        let signer = ks.register(NodeId::Client(id));
        let crypto = CryptoCtx::new(signer, ks.verifier(), true);
        QuorumClient::new(
            id,
            cfg,
            crypto,
            policy,
            quorum,
            synthetic_source(id, 3, 100),
        )
    }

    fn reply(_replica: ReplicaId, seq: u64, digest: Digest) -> Message {
        Message::Reply {
            data: ReplyData {
                client: ClientId::new(1, 5),
                batch_seq: seq,
                seq: seq + 1,
                block_height: seq + 1,
                result_digest: digest,
                results: rdb_store::TxnEffect::default(),
                txns: 3,
            },
            view: 0,
        }
    }

    #[test]
    fn submits_signed_batches_to_local_primary() {
        let mut c = client(TargetPolicy::LocalPrimary, 2);
        let mut out = Outbox::new();
        assert!(c.next_request(SimTime::ZERO, &mut out));
        let actions = out.take();
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                crate::api::Action::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 1);
        let (to, msg) = sends[0];
        assert_eq!(*to, NodeId::Replica(ReplicaId::new(1, 0)));
        let Message::Request(sb) = msg else {
            panic!("expected request")
        };
        assert!(c.crypto.verify_batch(sb));
    }

    #[test]
    fn completes_on_quorum_of_matching_replies() {
        let mut c = client(TargetPolicy::LocalPrimary, 2);
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        out.take();
        let d = Digest::of(b"result");
        let mut out = Outbox::new();
        c.on_message(
            SimTime::ZERO,
            ReplicaId::new(1, 0).into(),
            reply(ReplicaId::new(1, 0), 0, d),
            &mut out,
        );
        assert!(out
            .take()
            .iter()
            .all(|a| !matches!(a, crate::api::Action::RequestComplete { .. })));
        let mut out = Outbox::new();
        c.on_message(
            SimTime::ZERO,
            ReplicaId::new(1, 1).into(),
            reply(ReplicaId::new(1, 1), 0, d),
            &mut out,
        );
        assert!(out
            .take()
            .iter()
            .any(|a| matches!(a, crate::api::Action::RequestComplete { seq: 0, txns: 3 })));
    }

    #[test]
    fn conflicting_replies_do_not_complete() {
        let mut c = client(TargetPolicy::LocalPrimary, 2);
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        out.take();
        let mut out = Outbox::new();
        c.on_message(
            SimTime::ZERO,
            ReplicaId::new(1, 0).into(),
            reply(ReplicaId::new(1, 0), 0, Digest::of(b"a")),
            &mut out,
        );
        c.on_message(
            SimTime::ZERO,
            ReplicaId::new(1, 1).into(),
            reply(ReplicaId::new(1, 1), 0, Digest::of(b"b")),
            &mut out,
        );
        assert!(!out
            .take()
            .iter()
            .any(|a| matches!(a, crate::api::Action::RequestComplete { .. })));
    }

    #[test]
    fn duplicate_replica_replies_count_once() {
        let mut c = client(TargetPolicy::LocalPrimary, 2);
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        out.take();
        let d = Digest::of(b"r");
        let mut out = Outbox::new();
        for _ in 0..3 {
            c.on_message(
                SimTime::ZERO,
                ReplicaId::new(1, 0).into(),
                reply(ReplicaId::new(1, 0), 0, d),
                &mut out,
            );
        }
        assert!(!out
            .take()
            .iter()
            .any(|a| matches!(a, crate::api::Action::RequestComplete { .. })));
    }

    #[test]
    fn retry_broadcasts_locally_with_backoff() {
        let mut c = client(TargetPolicy::LocalPrimary, 2);
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        out.take();
        let mut out = Outbox::new();
        c.on_timer(SimTime::ZERO, TimerKind::ClientRetry { seq: 0 }, &mut out);
        let actions = out.take();
        let sends = actions
            .iter()
            .filter(|a| matches!(a, crate::api::Action::Send { .. }))
            .count();
        assert_eq!(sends, 4, "broadcast to the 4 local replicas");
        // Back-off doubles.
        let t1 = c.retry_timeout;
        let mut out = Outbox::new();
        c.on_timer(SimTime::ZERO, TimerKind::ClientRetry { seq: 0 }, &mut out);
        assert_eq!(c.retry_timeout, t1.doubled());
    }

    #[test]
    fn retry_backoff_is_capped_at_the_configured_ceiling() {
        let mut c = client(TargetPolicy::LocalPrimary, 2);
        let cap = c.cfg.client_retry_cap;
        assert!(c.cfg.client_retry < cap, "test needs headroom to double");
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        out.take();
        // Far more firings than needed to overflow an uncapped doubling
        // of the 4 s base past 60 s (2^40 · 4 s otherwise).
        for _ in 0..40 {
            let mut out = Outbox::new();
            c.on_timer(SimTime::ZERO, TimerKind::ClientRetry { seq: 0 }, &mut out);
            assert!(c.retry_timeout <= cap, "back-off exceeded the ceiling");
        }
        assert_eq!(c.retry_timeout, cap, "back-off settles at the ceiling");
        // And stays there.
        let mut out = Outbox::new();
        c.on_timer(SimTime::ZERO, TimerKind::ClientRetry { seq: 0 }, &mut out);
        assert_eq!(c.retry_timeout, cap);
    }

    #[test]
    fn global_policy_targets_global_primary_and_retries_everywhere() {
        let mut c = client(TargetPolicy::GlobalPrimary, 3);
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        let actions = out.take();
        let Some(crate::api::Action::Send { to, .. }) = actions
            .iter()
            .find(|a| matches!(a, crate::api::Action::Send { .. }))
        else {
            panic!()
        };
        assert_eq!(*to, NodeId::Replica(ReplicaId::new(0, 0)));
        let mut out = Outbox::new();
        c.on_timer(SimTime::ZERO, TimerKind::ClientRetry { seq: 0 }, &mut out);
        let sends = out
            .take()
            .iter()
            .filter(|a| matches!(a, crate::api::Action::Send { .. }))
            .count();
        assert_eq!(sends, 8, "retry broadcast hits all z*n replicas");
    }

    #[test]
    fn home_replica_is_stable_per_client() {
        let c = client(TargetPolicy::HomeReplica, 3);
        let t1 = c.entry_target();
        let t2 = c.entry_target();
        assert_eq!(t1, t2);
        // index 5 % 8 replicas = replica 5 => cluster 1 index 1.
        assert_eq!(t1, ReplicaId::new(1, 1));
    }

    #[test]
    fn stale_replies_ignored() {
        let mut c = client(TargetPolicy::LocalPrimary, 1);
        let mut out = Outbox::new();
        c.next_request(SimTime::ZERO, &mut out);
        out.take();
        // Reply for a different (old) sequence number.
        let mut out = Outbox::new();
        c.on_message(
            SimTime::ZERO,
            ReplicaId::new(1, 0).into(),
            reply(ReplicaId::new(1, 0), 99, Digest::of(b"x")),
            &mut out,
        );
        assert!(!out
            .take()
            .iter()
            .any(|a| matches!(a, crate::api::Action::RequestComplete { .. })));
    }
}
