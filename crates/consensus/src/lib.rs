//! # rdb-consensus
//!
//! Sans-io implementations of the five Byzantine fault-tolerant consensus
//! protocols evaluated in *ResilientDB: Global Scale Resilient Blockchain
//! Fabric* (PVLDB 13(6), 2020):
//!
//! * [`geobft`] — **GeoBFT**, the paper's contribution (§2): clusters run
//!   PBFT locally in parallel, share certified decisions with `f + 1`
//!   messages per remote cluster, recover via remote view-changes, and
//!   execute rounds of `z` batches in deterministic cluster order.
//! * [`pbft`] — PBFT over all `z·n` replicas (§2.2, baseline).
//! * [`zyzzyva`] — speculative BFT with client-assisted recovery (§3).
//! * [`hotstuff`] — 4-phase HotStuff with parallel primaries and no
//!   threshold signatures, as the paper implemented it (§3).
//! * [`steward`] — the hierarchical wide-area protocol with a primary
//!   cluster (§3).
//!
//! All protocols implement [`api::ReplicaProtocol`] (replica side) and
//! [`api::ClientProtocol`] (client side) and are driven by either the
//! discrete-event simulator (`rdb-simnet`) or the threaded fabric
//! (`resilientdb`).

pub mod adversary;
pub mod api;
pub mod certificate;
pub mod checkpoint;
pub mod clients;
pub mod codec;
pub mod config;
pub mod crypto_ctx;
pub mod exec;
pub mod messages;
pub mod pbft_core;
pub mod stage;
pub mod types;

pub mod geobft;
pub mod hotstuff;
pub mod pbft;
pub mod registry;
pub mod steward;
pub mod zyzzyva;

#[cfg(test)]
pub(crate) mod testkit;

pub use adversary::AdversarySpec;
pub use api::{Action, ClientProtocol, Outbox, ReplicaProtocol, TimerKind};
pub use certificate::{CommitCertificate, CommitSig};
pub use checkpoint::{CheckpointTracker, StableCheckpoint};
pub use config::{ExecMode, ProtocolConfig, ProtocolKind};
pub use crypto_ctx::CryptoCtx;
pub use messages::{Message, Scope};
pub use stage::{Stage, VerificationCost, VerifiedMessage};
pub use types::{ClientBatch, Decision, DecisionEntry, ReplyData, SignedBatch, Transaction};
