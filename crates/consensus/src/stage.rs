//! The Figure-9 pipeline vocabulary, shared by the threaded fabric
//! (`resilientdb`) and the discrete-event simulator (`rdb-simnet`).
//!
//! The paper's central systems claim (§3, Figure 9) is that a replica is a
//! *pipeline*: input threads receive messages, a pool of threads verifies
//! signatures in parallel, a single worker orders, a dedicated thread
//! executes, and output threads drain the network. For that split to be
//! sound, verification must be *pure*: a function of the message bytes and
//! the key material only, with no protocol state. This module factors that
//! function out of the protocol `on_message` handlers:
//!
//! * [`Stage`] names the five stages so runtimes and metrics agree on the
//!   vocabulary;
//! * [`Message::verification_cost`] declares, per message, how much
//!   signature/MAC work the verifier stage will spend (the simulator
//!   charges exactly this on its modeled verifier pool);
//! * [`Message::verify`] performs that work against a [`CryptoCtx`];
//! * [`VerifiedMessage`] is the proof-carrying result handed to the
//!   ordering stage, whose protocols run on a
//!   [`CryptoCtx::preverified`] context and skip re-verification.
//!
//! Every signature check below mirrors the check the owning protocol used
//! to perform inline — no stricter (valid traffic must not be dropped) and
//! no weaker (the ordering stage trusts this stage completely). Protocol
//! *state* checks (views, membership, quorum counting, digest/window
//! bookkeeping) stay in the state machines.

use crate::crypto_ctx::CryptoCtx;
use crate::geobft::rvc_payload;
use crate::hotstuff::{hs_vote_payload, skip_digest};
use crate::messages::{HsQc, Message};
use crate::pbft_core::scoped_commit_payload;
use crate::steward::accept_payload;
use crate::zyzzyva::spec_response_payload;
use rdb_common::config::SystemConfig;
use rdb_common::ids::NodeId;
use rdb_crypto::sign::{PublicKey, Signature};

/// One stage of the replica pipeline (paper Figure 9, plus the
/// checkpoint stage that garbage-collects stable state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Transport receive: envelopes enter the pipeline.
    Input,
    /// Parallel signature/MAC verification (fan-out pool).
    Verify,
    /// The ordering state machine (consensus worker).
    Order,
    /// Applying decisions to the store and the ledger.
    Execute,
    /// Certifying executed state against peers and compacting the
    /// stable ledger prefix, off the execute stage (§2.2 checkpoints).
    Checkpoint,
    /// Draining outgoing messages to the transport.
    Output,
}

impl Stage {
    /// Number of stages (sizes per-stage counter arrays).
    pub const COUNT: usize = 6;

    /// All stages, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Input,
        Stage::Verify,
        Stage::Order,
        Stage::Execute,
        Stage::Checkpoint,
        Stage::Output,
    ];

    /// Stable index (for per-stage counter arrays).
    pub fn index(self) -> usize {
        match self {
            Stage::Input => 0,
            Stage::Verify => 1,
            Stage::Order => 2,
            Stage::Execute => 3,
            Stage::Checkpoint => 4,
            Stage::Output => 5,
        }
    }

    /// Short label for metrics and traces.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Input => "input",
            Stage::Verify => "verify",
            Stage::Order => "order",
            Stage::Execute => "execute",
            Stage::Checkpoint => "checkpoint",
            Stage::Output => "output",
        }
    }
}

/// Declared verification work for one message copy: how many signature
/// verifications and MAC checks the verifier stage performs on receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerificationCost {
    /// Digital-signature verifications (ED25519-priced).
    pub sigs: u32,
    /// MAC checks (AES-CMAC-priced).
    pub macs: u32,
}

impl VerificationCost {
    /// Total nanoseconds at the given unit prices.
    pub fn ns(&self, verify_ns: u64, mac_ns: u64) -> u64 {
        u64::from(self.sigs) * verify_ns + u64::from(self.macs) * mac_ns
    }
}

impl Message {
    /// How much crypto work receiving one copy of this message costs,
    /// mirroring what [`Message::verify`] actually checks (plus the session
    /// MAC on every authenticated channel message). Certificates and QCs
    /// carry `n - f` individual signatures each receiver re-checks — the
    /// paper omits threshold signatures (§3).
    pub fn verification_cost(&self) -> VerificationCost {
        match self {
            // Client batch signature + session MAC.
            Message::Request(_)
            | Message::Forward(_)
            | Message::PrePrepare { .. }
            | Message::OrderReq { .. }
            | Message::Commit { .. } => VerificationCost { sigs: 1, macs: 1 },
            // MAC-authenticated control traffic.
            Message::Prepare { .. }
            | Message::Checkpoint { .. }
            | Message::Drvc { .. }
            | Message::LocalCommit { .. }
            | Message::Reply { .. }
            | Message::ViewChange { .. }
            | Message::NewView { .. } => VerificationCost { sigs: 0, macs: 1 },
            // Certificates: client signature + every commit signature.
            Message::GlobalShare { cert } | Message::StewardProposal { cert, .. } => {
                VerificationCost {
                    sigs: 1 + cert.commits.len() as u32,
                    macs: 1,
                }
            }
            Message::Rvc { .. } | Message::SpecResponse { .. } => {
                VerificationCost { sigs: 1, macs: 0 }
            }
            // The replicas validate a ZyzCommit against their own history
            // digest instead of re-checking the embedded spec-response
            // signatures (those bind the execution `result`, which the
            // commit certificate does not carry) — so receipt costs one
            // MAC, mirroring [`Message::verify`].
            Message::ZyzCommit { .. } => VerificationCost { sigs: 0, macs: 1 },
            Message::HsProposal { batch, justify, .. } => VerificationCost {
                sigs: u32::from(batch.is_some())
                    + justify.as_ref().map_or(0, |qc| qc.votes.len() as u32),
                macs: 1,
            },
            Message::HsVote { .. } | Message::StewardLocalAccept { .. } => {
                VerificationCost { sigs: 1, macs: 0 }
            }
            Message::StewardAccept { sigs, .. } => VerificationCost {
                sigs: sigs.len() as u32,
                macs: 0,
            },
            Message::Noop => VerificationCost { sigs: 0, macs: 0 },
        }
    }

    /// Pure verification of this message as received from `from`: all the
    /// signature checks the protocols would otherwise perform inside
    /// `on_message`, and nothing stateful. Returns `false` for messages
    /// that must be dropped (§2.1: "Replicas will discard any messages
    /// that are not well-formed").
    pub fn verify(&self, from: NodeId, system: &SystemConfig, ctx: &CryptoCtx) -> bool {
        if !ctx.checks_signatures() {
            return true;
        }
        match self {
            Message::Request(sb) | Message::Forward(sb) => ctx.verify_batch(sb),
            Message::PrePrepare { batch, digest, .. } => {
                // Hash the batch once for both the binding check and the
                // client-signature check (the worker hashes it again for
                // its own bookkeeping; this stage must not hash twice).
                let d = batch.digest();
                d == *digest && verify_batch_with_digest(ctx, batch, &d)
            }
            Message::OrderReq { batch, .. } => ctx.verify_batch(batch),
            Message::Commit {
                scope,
                seq,
                digest,
                sig,
                ..
            } => {
                let payload = scoped_commit_payload(*scope, *seq, digest);
                verify_one(ctx, from, &payload, sig)
            }
            Message::GlobalShare { cert } | Message::StewardProposal { cert, .. } => {
                cert.verify(system, ctx)
            }
            Message::Rvc {
                target,
                round,
                v,
                requester,
                sig,
            } => {
                // Forwarded within the target cluster, so the signer is
                // the embedded requester, not the envelope sender.
                let payload = rvc_payload(*target, *round, *v, *requester);
                verify_one(ctx, (*requester).into(), &payload, sig)
            }
            Message::SpecResponse {
                view,
                seq,
                replica,
                digest,
                history,
                result,
                sig,
                ..
            } => {
                let payload = spec_response_payload(*view, *seq, digest, history, result);
                verify_one(ctx, (*replica).into(), &payload, sig)
            }
            Message::HsProposal {
                batch,
                digest,
                justify,
                ..
            } => {
                if let Some(b) = batch {
                    let d = b.digest();
                    if d != *digest || !verify_batch_with_digest(ctx, b, &d) {
                        return false;
                    }
                }
                match justify {
                    Some(qc) => verify_qc(ctx, qc),
                    None => true,
                }
            }
            Message::HsVote {
                slot,
                phase,
                digest,
                sig,
                ..
            } => {
                // Skip votes are cast over the Prepare phase regardless of
                // the phase field (see `hotstuff::handle_skip_vote`).
                let payload = if *digest == skip_digest(*slot) {
                    hs_vote_payload(*slot, crate::messages::HsPhase::Prepare, digest)
                } else {
                    hs_vote_payload(*slot, *phase, digest)
                };
                verify_one(ctx, from, &payload, sig)
            }
            Message::StewardLocalAccept {
                seq, digest, sig, ..
            } => {
                // Representatives only accept these from their own
                // cluster; the payload binds the sender's cluster.
                let payload = accept_payload(from.cluster(), *seq, digest);
                verify_one(ctx, from, &payload, sig)
            }
            Message::StewardAccept {
                seq,
                cluster,
                digest,
                sigs,
            } => {
                let payload = accept_payload(*cluster, *seq, digest);
                verify_pairs(ctx, &payload, sigs.iter().map(|(r, s)| ((*r).into(), *s)))
            }
            // MAC-authenticated or unauthenticated traffic; prepared-proof
            // digest binding in ViewChange/NewView is (re)checked by the
            // state machine where the proofs are consumed.
            Message::Reply { .. }
            | Message::Prepare { .. }
            | Message::Checkpoint { .. }
            | Message::ViewChange { .. }
            | Message::NewView { .. }
            | Message::Drvc { .. }
            | Message::LocalCommit { .. }
            | Message::ZyzCommit { .. }
            | Message::Noop => true,
        }
    }
}

/// [`CryptoCtx::verify_batch`] with the batch digest already in hand.
fn verify_batch_with_digest(
    ctx: &CryptoCtx,
    sb: &crate::types::SignedBatch,
    digest: &rdb_crypto::digest::Digest,
) -> bool {
    if sb.is_noop() {
        return true;
    }
    ctx.verify(&sb.pubkey, digest.as_bytes(), &sb.sig)
}

fn verify_one(ctx: &CryptoCtx, signer: NodeId, payload: &[u8], sig: &Signature) -> bool {
    let Some(pk) = ctx.verifier().public_key_of(signer) else {
        return false;
    };
    ctx.verify(&pk, payload, sig)
}

fn verify_pairs(
    ctx: &CryptoCtx,
    payload: &[u8],
    signers: impl Iterator<Item = (NodeId, Signature)>,
) -> bool {
    let mut pairs: Vec<(PublicKey, Signature)> = Vec::new();
    for (node, sig) in signers {
        let Some(pk) = ctx.verifier().public_key_of(node) else {
            return false;
        };
        pairs.push((pk, sig));
    }
    ctx.verify_many(payload, &pairs)
}

fn verify_qc(ctx: &CryptoCtx, qc: &HsQc) -> bool {
    let payload = hs_vote_payload(qc.slot, qc.phase, &qc.digest);
    verify_pairs(
        ctx,
        &payload,
        qc.votes.iter().map(|(r, s)| ((*r).into(), *s)),
    )
}

/// A message whose signatures were checked by the verifier stage: the
/// proof-carrying hand-off from [`Stage::Verify`] to [`Stage::Order`].
#[derive(Debug, Clone)]
pub struct VerifiedMessage {
    from: NodeId,
    msg: Message,
}

impl VerifiedMessage {
    /// Verify `msg` from `from` and wrap it; `None` means the message is
    /// malformed and must be dropped (never forwarded to the worker).
    pub fn check(
        system: &SystemConfig,
        ctx: &CryptoCtx,
        from: NodeId,
        msg: Message,
    ) -> Option<VerifiedMessage> {
        if msg.verify(from, system, ctx) {
            Some(VerifiedMessage { from, msg })
        } else {
            None
        }
    }

    /// Wrap without checking — for drivers whose compute model charges
    /// verification in virtual time instead (the simulator), and tests.
    pub fn assume_verified(from: NodeId, msg: Message) -> VerifiedMessage {
        VerifiedMessage { from, msg }
    }

    /// The envelope sender.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// The verified message.
    pub fn message(&self) -> &Message {
        &self.msg
    }

    /// Consume into `(from, msg)` for dispatch into the state machine.
    pub fn into_parts(self) -> (NodeId, Message) {
        (self.from, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{commit_payload, CommitCertificate, CommitSig};
    use crate::messages::{HsPhase, Scope};
    use crate::types::{ClientBatch, SignedBatch, Transaction};
    use rdb_common::ids::{ClientId, ClusterId, ReplicaId};
    use rdb_crypto::digest::Digest;
    use rdb_crypto::sign::KeyStore;
    use rdb_store::Operation;

    struct Fixture {
        system: SystemConfig,
        ks: KeyStore,
        ctx: CryptoCtx,
    }

    fn fixture() -> Fixture {
        let system = SystemConfig::geo(2, 4).unwrap();
        let ks = KeyStore::new(11);
        let signer = ks.register(ReplicaId::new(0, 1).into());
        let ctx = CryptoCtx::new(signer, ks.verifier(), true);
        Fixture { system, ks, ctx }
    }

    fn signed_batch(ks: &KeyStore, client: ClientId, valid: bool) -> SignedBatch {
        let signer = ks.register(client.into());
        let batch = ClientBatch {
            client,
            batch_seq: 0,
            txns: vec![Transaction {
                client,
                seq: 0,
                op: Operation::NoOp,
            }],
        };
        let digest = batch.digest();
        let sig = if valid {
            signer.sign(digest.as_bytes())
        } else {
            signer.sign(b"forged")
        };
        SignedBatch {
            batch,
            pubkey: signer.public_key(),
            sig,
        }
    }

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn cost_matches_verified_work() {
        let f = fixture();
        let sb = signed_batch(&f.ks, ClientId::new(0, 0), true);
        assert_eq!(
            Message::Request(sb.clone()).verification_cost(),
            VerificationCost { sigs: 1, macs: 1 }
        );
        let cert = CommitCertificate {
            cluster: ClusterId(0),
            round: 1,
            digest: sb.digest(),
            batch: sb,
            commits: (0..3)
                .map(|i| CommitSig {
                    replica: ReplicaId::new(0, i),
                    sig: Signature::default(),
                })
                .collect(),
        };
        assert_eq!(
            Message::GlobalShare { cert }.verification_cost(),
            VerificationCost { sigs: 4, macs: 1 }
        );
        assert_eq!(
            Message::Noop.verification_cost(),
            VerificationCost::default()
        );
        // 1 sig (ED25519) must dominate macs at realistic prices.
        assert_eq!(
            VerificationCost { sigs: 2, macs: 3 }.ns(60_000, 1_000),
            123_000
        );
    }

    #[test]
    fn request_verification_accepts_valid_and_drops_forged() {
        let f = fixture();
        let good = signed_batch(&f.ks, ClientId::new(0, 0), true);
        let bad = signed_batch(&f.ks, ClientId::new(0, 1), false);
        let from: NodeId = ClientId::new(0, 0).into();
        assert!(Message::Request(good).verify(from, &f.system, &f.ctx));
        assert!(!Message::Request(bad).verify(from, &f.system, &f.ctx));
    }

    #[test]
    fn preprepare_checks_digest_binding() {
        let f = fixture();
        let sb = signed_batch(&f.ks, ClientId::new(0, 0), true);
        let from: NodeId = ReplicaId::new(0, 0).into();
        let ok = Message::PrePrepare {
            scope: Scope::Global,
            view: 0,
            seq: 1,
            digest: sb.digest(),
            batch: sb.clone(),
        };
        assert!(ok.verify(from, &f.system, &f.ctx));
        let mismatched = Message::PrePrepare {
            scope: Scope::Global,
            view: 0,
            seq: 1,
            digest: Digest::of(b"other"),
            batch: sb,
        };
        assert!(!mismatched.verify(from, &f.system, &f.ctx));
    }

    #[test]
    fn commit_signature_must_match_sender() {
        let f = fixture();
        let sender = ReplicaId::new(0, 2);
        let signer = f.ks.register(sender.into());
        let digest = Digest::of(b"batch");
        let payload = scoped_commit_payload(Scope::Cluster(ClusterId(0)), 3, &digest);
        let msg = |sig| Message::Commit {
            scope: Scope::Cluster(ClusterId(0)),
            view: 0,
            seq: 3,
            digest,
            sig,
        };
        assert!(msg(signer.sign(&payload)).verify(sender.into(), &f.system, &f.ctx));
        assert!(!msg(Signature::default()).verify(sender.into(), &f.system, &f.ctx));
        // Same signature presented as another replica fails.
        let other = ReplicaId::new(0, 3);
        let _ = f.ks.register(other.into());
        assert!(!msg(signer.sign(&payload)).verify(other.into(), &f.system, &f.ctx));
    }

    #[test]
    fn certificate_messages_verify_end_to_end() {
        let f = fixture();
        let sb = signed_batch(&f.ks, ClientId::new(0, 7), true);
        let digest = sb.digest();
        let payload = commit_payload(ClusterId(0), 1, &digest);
        let commits: Vec<CommitSig> = (0..3)
            .map(|i| {
                let r = ReplicaId::new(0, i);
                let s = if i == 1 {
                    // Re-use the fixture's own signer for its id.
                    f.ctx.sign(&payload)
                } else {
                    f.ks.register(r.into()).sign(&payload)
                };
                CommitSig { replica: r, sig: s }
            })
            .collect();
        let cert = CommitCertificate {
            cluster: ClusterId(0),
            round: 1,
            digest,
            batch: sb,
            commits,
        };
        let from: NodeId = ReplicaId::new(0, 0).into();
        assert!(Message::GlobalShare { cert: cert.clone() }.verify(from, &f.system, &f.ctx));
        let mut tampered = cert;
        tampered.commits[0].sig = Signature::default();
        assert!(!Message::GlobalShare { cert: tampered }.verify(from, &f.system, &f.ctx));
    }

    #[test]
    fn hotstuff_vote_and_skip_vote_verify() {
        let f = fixture();
        let voter = ReplicaId::new(1, 0);
        let signer = f.ks.register(voter.into());
        let digest = Digest::of(b"proposal");
        let vote = Message::HsVote {
            slot: 5,
            phase: HsPhase::PreCommit,
            digest,
            replica: voter,
            sig: signer.sign(&hs_vote_payload(5, HsPhase::PreCommit, &digest)),
        };
        assert!(vote.verify(voter.into(), &f.system, &f.ctx));
        // Skip votes sign the Prepare payload over the skip digest.
        let sd = skip_digest(9);
        let skip = Message::HsVote {
            slot: 9,
            phase: HsPhase::Commit,
            digest: sd,
            replica: voter,
            sig: signer.sign(&hs_vote_payload(9, HsPhase::Prepare, &sd)),
        };
        assert!(skip.verify(voter.into(), &f.system, &f.ctx));
    }

    #[test]
    fn modeled_contexts_accept_everything() {
        let system = SystemConfig::geo(1, 4).unwrap();
        let ks = KeyStore::new(3);
        let signer = ks.register(ReplicaId::new(0, 0).into());
        let ctx = CryptoCtx::new(signer, ks.verifier(), false);
        let bad = signed_batch(&ks, ClientId::new(0, 0), false);
        let from: NodeId = ClientId::new(0, 0).into();
        assert!(Message::Request(bad).verify(from, &system, &ctx));
    }

    #[test]
    fn verified_message_wraps_only_valid_traffic() {
        let f = fixture();
        let good = signed_batch(&f.ks, ClientId::new(1, 0), true);
        let bad = signed_batch(&f.ks, ClientId::new(1, 1), false);
        let from: NodeId = ClientId::new(1, 0).into();
        let vm = VerifiedMessage::check(&f.system, &f.ctx, from, Message::Request(good.clone()))
            .expect("valid request passes");
        assert_eq!(vm.from(), from);
        assert!(matches!(vm.message(), Message::Request(_)));
        let (got_from, got_msg) = vm.into_parts();
        assert_eq!(got_from, from);
        assert_eq!(got_msg, Message::Request(good));
        assert!(VerifiedMessage::check(&f.system, &f.ctx, from, Message::Request(bad)).is_none());
    }
}
