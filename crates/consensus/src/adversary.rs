//! Byzantine behaviour as protocol *wrappers*.
//!
//! Both runtimes — the discrete-event simulator and the threaded fabric —
//! drive the same boxed [`ReplicaProtocol`] state machines, so Byzantine
//! faults can be expressed once as a wrapper that transforms the actions
//! an honest inner protocol emits, and injected identically into either
//! runtime. This mirrors how the paper reasons about Byzantine primaries
//! (§2.1: faulty replicas "can behave in arbitrary, possibly coordinated
//! and malicious, manners"): the adversary controls what the replica
//! *sends*, not the protocol logic of the honest majority.
//!
//! [`EquivocatingPrimary`] implements the classic equivocation attack:
//! whenever the wrapped replica proposes a batch (PBFT/GeoBFT
//! `PrePrepare`, Zyzzyva `OrderReq`, HotStuff Prepare-phase
//! `HsProposal`), the victims receive a *different but well-formed*
//! proposal — a no-op batch with a correctly recomputed digest, which
//! passes every receiver-side check ([`SignedBatch`] no-ops carry no
//! client signature by design). Safety must hold anyway:
//!
//! * PBFT/GeoBFT: with enough victims neither digest reaches a prepare
//!   quorum, the progress timer fires, and a view change elects an
//!   honest primary — no conflicting commit ever forms.
//! * HotStuff: the honest `n − f` quorum still forms every QC; a victim
//!   that voted for the forged digest refuses the honest QC (prepare-
//!   and skip-quorums may never both form) and freezes at the
//!   equivocated slot — isolated, never forked.
//! * Zyzzyva: victims speculatively execute the forged history, but no
//!   commit certificate (`2f + 1` matching responses) can cover it;
//!   clients fall back to the commit phase over the honest majority.
//!
//! The scenario harness (`rdb-scenario`) runs exactly these attacks per
//! protocol in both runtimes and asserts no divergent commit.

use crate::api::{Action, Outbox, ReplicaProtocol, TimerKind};
use crate::messages::{HsPhase, Message};
use crate::types::SignedBatch;
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_common::time::SimTime;
use std::collections::BTreeSet;

/// Byzantine behaviour to install on one replica at deployment time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarySpec {
    /// When this replica acts as a primary/leader, every proposal it
    /// sends to a victim is replaced by a conflicting well-formed one.
    EquivocatePrimary {
        /// The replicas that receive the conflicting proposal.
        victims: Vec<ReplicaId>,
    },
}

/// Wrap `inner` according to `spec`.
pub fn apply_adversary(
    inner: Box<dyn ReplicaProtocol>,
    spec: &AdversarySpec,
) -> Box<dyn ReplicaProtocol> {
    match spec {
        AdversarySpec::EquivocatePrimary { victims } => Box::new(EquivocatingPrimary::new(
            inner,
            victims.iter().copied().collect(),
        )),
    }
}

/// A replica whose outgoing proposals equivocate: victims see a
/// conflicting well-formed proposal in place of the honest one. All other
/// behaviour (voting, view changes, execution) stays honest, which is the
/// strongest position for the attack — the replica keeps its standing in
/// the protocol while trying to split the quorum.
pub struct EquivocatingPrimary {
    inner: Box<dyn ReplicaProtocol>,
    victims: BTreeSet<ReplicaId>,
}

impl EquivocatingPrimary {
    /// Wrap `inner`, equivocating towards `victims`.
    pub fn new(inner: Box<dyn ReplicaProtocol>, victims: BTreeSet<ReplicaId>) -> Self {
        EquivocatingPrimary { inner, victims }
    }

    /// The conflicting proposal sent to victims in place of `honest`: a
    /// no-op batch tagged with the proposal's log position, so every
    /// equivocated position gets a distinct, well-formed digest.
    fn forge(&self, position: u64) -> SignedBatch {
        SignedBatch::noop(self.inner.id().cluster, position)
    }

    /// Rewrite a proposal action bound for a victim; `None` passes the
    /// action through unchanged.
    fn rewrite(&self, to: NodeId, msg: &Message) -> Option<Message> {
        let NodeId::Replica(r) = to else {
            return None;
        };
        if !self.victims.contains(&r) {
            return None;
        }
        match msg {
            Message::PrePrepare {
                scope, view, seq, ..
            } => {
                let forged = self.forge(*seq);
                let digest = forged.digest();
                Some(Message::PrePrepare {
                    scope: *scope,
                    view: *view,
                    seq: *seq,
                    batch: forged,
                    digest,
                })
            }
            Message::OrderReq { view, seq, .. } => {
                let forged = self.forge(*seq);
                let history = forged.digest();
                Some(Message::OrderReq {
                    view: *view,
                    seq: *seq,
                    batch: forged,
                    history,
                })
            }
            Message::HsProposal {
                slot,
                phase: HsPhase::Prepare,
                batch: Some(_),
                justify,
                ..
            } => {
                let forged = self.forge(*slot);
                let digest = forged.digest();
                Some(Message::HsProposal {
                    slot: *slot,
                    phase: HsPhase::Prepare,
                    batch: Some(forged),
                    digest,
                    justify: justify.clone(),
                })
            }
            _ => None,
        }
    }

    fn relay(&mut self, scratch: &mut Outbox, out: &mut Outbox) {
        for action in scratch.take() {
            match action {
                Action::Send { to, msg } => match self.rewrite(to, &msg) {
                    Some(forged) => out.send(to, forged),
                    None => out.send(to, msg),
                },
                other => out.push(other),
            }
        }
    }
}

impl ReplicaProtocol for EquivocatingPrimary {
    fn id(&self) -> ReplicaId {
        self.inner.id()
    }

    fn on_start(&mut self, now: SimTime, out: &mut Outbox) {
        let mut scratch = Outbox::new();
        self.inner.on_start(now, &mut scratch);
        self.relay(&mut scratch, out);
    }

    fn on_message(&mut self, now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        let mut scratch = Outbox::new();
        self.inner.on_message(now, from, msg, &mut scratch);
        self.relay(&mut scratch, out);
    }

    fn on_timer(&mut self, now: SimTime, timer: TimerKind, out: &mut Outbox) {
        let mut scratch = Outbox::new();
        self.inner.on_timer(now, timer, &mut scratch);
        self.relay(&mut scratch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::crypto_ctx::CryptoCtx;
    use crate::pbft::PbftReplica;
    use crate::registry;
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;
    use rdb_store::KvStore;

    fn wrapped_primary(ks: &KeyStore, victims: Vec<ReplicaId>) -> Box<dyn ReplicaProtocol> {
        let system = SystemConfig::geo(1, 4).unwrap();
        let cfg = ProtocolConfig::new(system);
        let rid = ReplicaId::new(0, 0);
        let signer = ks.register(NodeId::Replica(rid));
        let crypto = CryptoCtx::new(signer, ks.verifier(), true);
        let inner = Box::new(PbftReplica::new(cfg, rid, crypto, KvStore::new()));
        apply_adversary(inner, &AdversarySpec::EquivocatePrimary { victims })
    }

    fn client_batch(ks: &KeyStore) -> SignedBatch {
        let client = rdb_common::ids::ClientId::new(0, 9);
        let signer = ks.register(NodeId::Client(client));
        let batch = crate::clients::synthetic_source(client, 3, 16)(0);
        let sig = signer.sign(batch.digest().as_bytes());
        SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch,
        }
    }

    #[test]
    fn equivocates_only_towards_victims() {
        let victims = vec![ReplicaId::new(0, 2), ReplicaId::new(0, 3)];
        let ks = KeyStore::new(3);
        let mut primary = wrapped_primary(&ks, victims.clone());
        let sb = client_batch(&ks);
        let honest_digest = sb.digest();
        let mut out = Outbox::new();
        primary.on_message(
            SimTime::ZERO,
            NodeId::Client(sb.batch.client),
            Message::Request(sb),
            &mut out,
        );
        let mut honest = 0;
        let mut forged = 0;
        for a in out.actions() {
            if let Action::Send {
                to: NodeId::Replica(r),
                msg: Message::PrePrepare { batch, digest, .. },
            } = a
            {
                assert_eq!(batch.digest(), *digest, "forgeries stay well-formed");
                if victims.contains(r) {
                    assert!(batch.is_noop());
                    assert_ne!(*digest, honest_digest);
                    forged += 1;
                } else {
                    assert_eq!(*digest, honest_digest);
                    honest += 1;
                }
            }
        }
        assert_eq!(forged, 2);
        assert!(honest >= 1, "non-victims still get the honest proposal");
    }

    #[test]
    fn registry_builds_wrapped_replicas_for_all_kinds() {
        let system = SystemConfig::geo(2, 4).unwrap();
        let cfg = ProtocolConfig::new(system);
        for (i, kind) in crate::config::ProtocolKind::ALL.iter().enumerate() {
            let ks = KeyStore::new(40 + i as u64);
            let rid = ReplicaId::new(0, 0);
            let signer = ks.register(NodeId::Replica(rid));
            let crypto = CryptoCtx::new(signer, ks.verifier(), false);
            let spec = AdversarySpec::EquivocatePrimary {
                victims: vec![ReplicaId::new(0, 3)],
            };
            let r = registry::build_replica_with_adversary(
                *kind,
                cfg.clone(),
                rid,
                crypto,
                KvStore::new(),
                Some(&spec),
            );
            assert_eq!(r.id(), rid);
        }
    }
}
