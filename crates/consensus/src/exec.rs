//! Deterministic batch execution shared by all replica implementations.

use crate::config::ExecMode;
use crate::types::SignedBatch;
use rdb_crypto::digest::Digest;
use rdb_crypto::sha256::Sha256;
use rdb_store::{KvStore, TxnEffect};

/// The canonical digest of one batch's execution effect: a hash binding
/// the batch digest to every per-operation outcome, in order. Replicas
/// include it in client replies; clients match `f + 1` identical ones
/// (§2.4). Because the digest is recomputable from `(batch digest,
/// results)`, a client session can also reject a reply whose carried
/// `results` payload does not hash to its claimed `result_digest` — a
/// Byzantine replica cannot smuggle forged read values under an honest
/// digest.
pub fn result_digest(batch_digest: &Digest, effect: &TxnEffect) -> Digest {
    let mut h = Sha256::new();
    h.update(b"exec-real");
    h.update(batch_digest.as_bytes());
    for outcome in &effect.outcomes {
        match outcome {
            rdb_store::ExecOutcome::Done => {
                h.update(&[0u8]);
            }
            rdb_store::ExecOutcome::ReadValue(v) => {
                h.update(&[1u8]);
                if let Some(v) = v {
                    h.update(&v.0);
                }
            }
            rdb_store::ExecOutcome::Counter(c) => {
                h.update(&[2u8]);
                h.update(&c.to_le_bytes());
            }
            rdb_store::ExecOutcome::Scanned(n) => {
                h.update(&[3u8]);
                h.update(&n.to_le_bytes());
            }
            rdb_store::ExecOutcome::Txn(outcome) => {
                h.update(&[4u8]);
                h.update(&outcome.canonical_bytes());
            }
        }
    }
    Digest(h.finalize())
}

/// Execute `batch` against `store` (or model it) and return the *result
/// digest* included in client replies together with the per-transaction
/// outcomes the reply now carries. Determinism across replicas is what
/// lets clients match `f + 1` identical replies (§2.4).
///
/// Under [`ExecMode::Modeled`] no store is touched and the outcome list
/// is empty; the digest stays the historical modeled constant so figure
/// reproductions are byte-identical to pre-API-redesign runs.
pub fn execute_batch_with_results(
    store: &mut KvStore,
    mode: ExecMode,
    sb: &SignedBatch,
) -> (Digest, TxnEffect) {
    match mode {
        ExecMode::Real => {
            let effect = store.execute_batch(&sb.batch.operations().cloned().collect::<Vec<_>>());
            (result_digest(&sb.digest(), &effect), effect)
        }
        ExecMode::Modeled => {
            // No store mutation; the simulator charges the execution cost
            // in virtual time. The digest stays deterministic.
            let d = Digest::of_parts(&[b"exec-modeled", sb.digest().as_bytes()]);
            (d, TxnEffect::default())
        }
    }
}

/// [`execute_batch_with_results`] when only the digest is needed.
pub fn execute_batch(store: &mut KvStore, mode: ExecMode, sb: &SignedBatch) -> Digest {
    execute_batch_with_results(store, mode, sb).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientBatch, Transaction};
    use rdb_common::ids::ClientId;
    use rdb_store::{Operation, Value};

    fn batch() -> SignedBatch {
        let client = ClientId::new(0, 0);
        SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: 0,
                txns: vec![
                    Transaction {
                        client,
                        seq: 0,
                        op: Operation::Write {
                            key: 3,
                            value: Value::from_u64(42),
                        },
                    },
                    Transaction {
                        client,
                        seq: 1,
                        op: Operation::Read { key: 3 },
                    },
                ],
            },
            pubkey: Default::default(),
            sig: Default::default(),
        }
    }

    #[test]
    fn real_execution_is_deterministic_across_replicas() {
        let mut s1 = KvStore::with_ycsb_records(10);
        let mut s2 = KvStore::with_ycsb_records(10);
        let d1 = execute_batch(&mut s1, ExecMode::Real, &batch());
        let d2 = execute_batch(&mut s2, ExecMode::Real, &batch());
        assert_eq!(d1, d2);
        assert_eq!(s1.state_digest(), s2.state_digest());
        assert_eq!(s1.get(3), Some(Value::from_u64(42)));
    }

    #[test]
    fn real_execution_result_reflects_reads() {
        // The same writes against different prior states give different
        // read outcomes and hence different result digests.
        let mut empty = KvStore::new();
        let mut loaded = KvStore::with_ycsb_records(10);
        loaded.execute(&Operation::Write {
            key: 3,
            value: Value::from_u64(7),
        });
        let b = batch();
        let d_fresh = execute_batch(&mut empty, ExecMode::Real, &b);
        // b writes 42 first, so the read outcome is identical; craft a
        // read-only batch to see the divergence instead.
        let client = ClientId::new(0, 0);
        let ro = SignedBatch {
            batch: ClientBatch {
                client,
                batch_seq: 1,
                txns: vec![Transaction {
                    client,
                    seq: 0,
                    op: Operation::Read { key: 3 },
                }],
            },
            pubkey: Default::default(),
            sig: Default::default(),
        };
        let mut a = KvStore::new();
        let mut b2 = KvStore::new();
        b2.execute(&Operation::Write {
            key: 3,
            value: Value::from_u64(9),
        });
        assert_ne!(
            execute_batch(&mut a, ExecMode::Real, &ro),
            execute_batch(&mut b2, ExecMode::Real, &ro)
        );
        let _ = d_fresh;
    }

    #[test]
    fn reply_results_match_their_digest() {
        let mut s = KvStore::with_ycsb_records(10);
        let b = batch();
        let (d, effect) = execute_batch_with_results(&mut s, ExecMode::Real, &b);
        assert_eq!(result_digest(&b.digest(), &effect), d);
        // The batch writes 42 then reads it back: the carried outcomes
        // expose the read value end-to-end.
        assert_eq!(
            effect.outcomes,
            vec![
                rdb_store::ExecOutcome::Done,
                rdb_store::ExecOutcome::ReadValue(Some(Value::from_u64(42)))
            ]
        );
        // Tampered results no longer hash to the claimed digest.
        let mut forged = effect.clone();
        forged.outcomes[1] = rdb_store::ExecOutcome::ReadValue(Some(Value::from_u64(7)));
        assert_ne!(result_digest(&b.digest(), &forged), d);
    }

    #[test]
    fn modeled_execution_carries_no_results() {
        let mut s = KvStore::with_ycsb_records(10);
        let (_, effect) = execute_batch_with_results(&mut s, ExecMode::Modeled, &batch());
        assert!(effect.outcomes.is_empty());
    }

    #[test]
    fn modeled_execution_leaves_store_untouched() {
        let mut s = KvStore::with_ycsb_records(10);
        let before = s.state_digest();
        let d = execute_batch(&mut s, ExecMode::Modeled, &batch());
        assert_eq!(s.state_digest(), before);
        assert_ne!(d, Digest::ZERO);
    }

    #[test]
    fn modeled_digest_is_batch_specific() {
        let mut s = KvStore::new();
        let d1 = execute_batch(&mut s, ExecMode::Modeled, &batch());
        let noop = SignedBatch::noop(rdb_common::ids::ClusterId(0), 1);
        let d2 = execute_batch(&mut s, ExecMode::Modeled, &noop);
        assert_ne!(d1, d2);
    }
}
