//! Commit certificates — the transferable proofs of local replication.
//!
//! §2.2: "on success, each non-faulty replica R ∈ C will be committed to
//! the proposed request ⟨T⟩c and will be able to construct a commit
//! certificate [⟨T⟩c, ρ]R that proves this commitment. In GeoBFT, this
//! commit certificate consists of the client request ⟨T⟩c and n − f > 2f
//! identical commit messages for ⟨T⟩c signed by distinct replicas."

use crate::crypto_ctx::CryptoCtx;
use crate::types::SignedBatch;
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClusterId, ReplicaId};
use rdb_common::wire;
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use serde::{Deserialize, Serialize};

/// One replica's signed commit vote inside a certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitSig {
    /// The committing replica.
    pub replica: ReplicaId,
    /// Signature over [`commit_payload`].
    pub sig: Signature,
}

/// The canonical byte string a replica signs when committing `(cluster,
/// seq, digest)`. Deliberately excludes the local view so certificates stay
/// valid across local view changes (a round commits at most one digest per
/// cluster regardless of the view it committed in — Lemma 2.3).
pub fn commit_payload(cluster: ClusterId, seq: u64, digest: &Digest) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + 2 + 8 + 32);
    out.extend_from_slice(b"commit");
    out.extend_from_slice(&cluster.0.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(digest.as_bytes());
    out
}

/// A commit certificate `[⟨T⟩c, ρ]_C`: proof that cluster `cluster`
/// replicated `batch` in round (local sequence) `round`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitCertificate {
    /// The certifying cluster.
    pub cluster: ClusterId,
    /// The round / local sequence number.
    pub round: u64,
    /// Digest of the batch.
    pub digest: Digest,
    /// The client request `⟨T⟩c` itself.
    pub batch: SignedBatch,
    /// `n - f` commit votes from distinct replicas of `cluster`.
    pub commits: Vec<CommitSig>,
}

impl CommitCertificate {
    /// Full validity check: digest binding, quorum size, membership,
    /// distinctness, signature validity, and the client signature on the
    /// inner batch. Returns `false` rather than an error — invalid
    /// certificates are simply discarded (§2.1).
    pub fn verify(&self, cfg: &SystemConfig, crypto: &CryptoCtx) -> bool {
        if self.cluster.as_usize() >= cfg.clusters {
            return false;
        }
        if self.batch.digest() != self.digest {
            return false;
        }
        if self.commits.len() < cfg.quorum() {
            return false;
        }
        // Distinct signers, all members of the certifying cluster.
        let mut seen = std::collections::HashSet::with_capacity(self.commits.len());
        for c in &self.commits {
            if c.replica.cluster != self.cluster
                || c.replica.index as usize >= cfg.replicas_per_cluster
                || !seen.insert(c.replica)
            {
                return false;
            }
        }
        if !crypto.verify_batch(&self.batch) {
            return false;
        }
        if crypto.checks_signatures() {
            // One payload, n - f signatures: check them as a batch (single
            // pass over the key registry — the verifier-stage hot path).
            let payload = commit_payload(self.cluster, self.round, &self.digest);
            let mut pairs = Vec::with_capacity(self.commits.len());
            for c in &self.commits {
                let Some(pk) = crypto.verifier().public_key_of(c.replica.into()) else {
                    return false;
                };
                pairs.push((pk, c.sig));
            }
            if !crypto.verify_many(&payload, &pairs) {
                return false;
            }
        }
        true
    }

    /// Modeled wire size: the embedded pre-prepare (batch) plus one signed
    /// digest per commit vote (§4: ≈6.4 kB at batch 100 with 7 commits).
    pub fn wire_size(&self) -> usize {
        wire::certificate_bytes(self.batch.batch.len(), self.commits.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientBatch, Transaction};
    use rdb_common::ids::{ClientId, NodeId};
    use rdb_crypto::sign::KeyStore;
    use rdb_store::{Operation, Value};

    struct Fixture {
        cfg: SystemConfig,
        ks: KeyStore,
        crypto: CryptoCtx,
    }

    fn fixture() -> Fixture {
        let cfg = SystemConfig::geo(2, 4).unwrap();
        let ks = KeyStore::new(7);
        let observer = ks.register(ReplicaId::new(1, 0).into());
        let crypto = CryptoCtx::new(observer, ks.verifier(), true);
        Fixture { cfg, ks, crypto }
    }

    fn make_cert(fx: &Fixture, commits: usize) -> CommitCertificate {
        let client = ClientId::new(0, 0);
        let client_signer = fx.ks.register(client.into());
        let batch = ClientBatch {
            client,
            batch_seq: 1,
            txns: vec![Transaction {
                client,
                seq: 0,
                op: Operation::Write {
                    key: 1,
                    value: Value::from_u64(9),
                },
            }],
        };
        let digest = batch.digest();
        let sb = SignedBatch {
            sig: client_signer.sign(digest.as_bytes()),
            pubkey: client_signer.public_key(),
            batch,
        };
        let payload = commit_payload(ClusterId(0), 5, &digest);
        let commits = (0..commits as u16)
            .map(|i| {
                let r = ReplicaId::new(0, i);
                let signer = fx.ks.register(NodeId::Replica(r));
                CommitSig {
                    replica: r,
                    sig: signer.sign(&payload),
                }
            })
            .collect();
        CommitCertificate {
            cluster: ClusterId(0),
            round: 5,
            digest,
            batch: sb,
            commits,
        }
    }

    #[test]
    fn valid_certificate_verifies() {
        let fx = fixture();
        let cert = make_cert(&fx, 3); // n=4, f=1, quorum=3
        assert!(cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn too_few_commits_rejected() {
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.commits.pop();
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn duplicate_signers_rejected() {
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.commits[1] = cert.commits[0].clone();
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn foreign_cluster_signer_rejected() {
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.commits[0].replica = ReplicaId::new(1, 0);
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn tampered_batch_rejected() {
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.batch.batch.txns[0].op = Operation::NoOp;
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn tampered_signature_rejected() {
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.commits[0].sig = Signature([1u8; 64]);
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn wrong_round_rejected() {
        // Signatures were made for round 5; presenting the cert as round 6
        // must fail (prevents replay into other rounds).
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.round = 6;
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn out_of_range_cluster_rejected() {
        let fx = fixture();
        let mut cert = make_cert(&fx, 3);
        cert.cluster = ClusterId(9);
        assert!(!cert.verify(&fx.cfg, &fx.crypto));
    }

    #[test]
    fn wire_size_matches_paper() {
        let fx = fixture();
        let cert = make_cert(&fx, 3);
        assert_eq!(cert.wire_size(), wire::certificate_bytes(1, 3));
    }
}
