//! HotStuff — 4-phase leader-based BFT (Yin et al.), implemented the way
//! the paper's evaluation ran it (§3, "Other protocols"):
//!
//! * no threshold signatures ("we skip the construction and verification
//!   of threshold signatures"): quorum certificates carry `n - f`
//!   individual vote signatures;
//! * parallel primaries ("we allow each replica of HotStuff to act as a
//!   primary in parallel without requiring the usage of pacemaker-based
//!   synchronization"): the global sequence space is partitioned
//!   round-robin, replica `i` leading every slot `s` with
//!   `s ≡ i (mod N)`.
//!
//! Each slot goes through Prepare → PreCommit → Commit → Decide, eight
//! message flights in total — which is exactly why the paper observes
//! "very high latencies due to its 4-phase design".
//!
//! Liveness of the round-robin partition requires filling slots whose
//! leader is idle or crashed: an idle leader proposes a no-op batch for
//! its own blocking slot, and live replicas collectively *skip* a slot
//! whose leader stays silent past a timeout (N − f matching skip votes).
//! The skip path is a simulation stand-in for pacemaker view-changes,
//! consistent with the paper's own pacemaker-less simplification.

use crate::api::{Outbox, ReplicaProtocol, TimerKind};
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::exec::execute_batch_with_results;
use crate::messages::{HsPhase, HsQc, Message};
use crate::types::{Decision, DecisionEntry, ReplyData, SignedBatch};
use rdb_common::ids::{ClientId, ClusterId, NodeId, ReplicaId};
use rdb_common::time::SimTime;
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use rdb_store::KvStore;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Vote signing payload.
pub fn hs_vote_payload(slot: u64, phase: HsPhase, digest: &Digest) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + 8 + 1 + 32);
    out.extend_from_slice(b"hsvote");
    out.extend_from_slice(&slot.to_le_bytes());
    out.push(match phase {
        HsPhase::Prepare => 0,
        HsPhase::PreCommit => 1,
        HsPhase::Commit => 2,
        HsPhase::Decide => 3,
    });
    out.extend_from_slice(digest.as_bytes());
    out
}

/// The digest live replicas vote for to skip a dead leader's slot.
pub fn skip_digest(slot: u64) -> Digest {
    Digest::of_parts(&[b"hs-skip", &slot.to_le_bytes()])
}

/// Per-slot state.
#[derive(Default)]
struct Slot {
    /// The proposal received in the Prepare phase.
    batch: Option<SignedBatch>,
    digest: Option<Digest>,
    /// Leader side: votes per (phase, digest).
    votes: HashMap<(HsPhase, Digest), BTreeMap<ReplicaId, Signature>>,
    /// Leader side: phases whose follow-up proposal was already sent.
    advanced: HashSet<HsPhase>,
    /// Replica side: phases already voted in.
    voted: HashSet<HsPhase>,
    /// Skip votes observed (stand-in for pacemaker view change).
    skip_votes: BTreeMap<ReplicaId, Signature>,
    /// Replica cast its own skip vote.
    skip_voted: bool,
    decided: bool,
}

/// A HotStuff replica (leader of every `N`-th slot).
pub struct HotStuffReplica {
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    store: KvStore,
    members: Vec<ReplicaId>,
    my_idx: usize,
    /// Client batches queued for this replica's owned slots.
    queue: VecDeque<SignedBatch>,
    /// Dedupe of queued/proposed client batches.
    seen: HashSet<(ClientId, u64)>,
    /// Next owned slot to propose into.
    my_next_slot: u64,
    slots: BTreeMap<u64, Slot>,
    /// Decided batches awaiting in-order execution.
    decided: BTreeMap<u64, SignedBatch>,
    exec_next: u64,
    executed_decisions: u64,
    reply_cache: HashMap<ClientId, ReplyData>,
    /// Slot the no-op/skip timer is armed for.
    stall_timer_slot: Option<u64>,
    /// Leaders whose slots were already skipped once: their subsequent
    /// slots are skipped after a much shorter timeout (cached suspicion,
    /// the role a pacemaker would play).
    suspected: HashSet<ReplicaId>,
}

impl HotStuffReplica {
    /// Build a replica.
    pub fn new(cfg: ProtocolConfig, id: ReplicaId, crypto: CryptoCtx, store: KvStore) -> Self {
        let members: Vec<ReplicaId> = cfg.system.all_replicas().collect();
        let my_idx = members.iter().position(|m| *m == id).expect("member");
        let n = members.len() as u64;
        // First owned slot >= 1.
        let my_next_slot = if my_idx == 0 { n } else { my_idx as u64 };
        HotStuffReplica {
            cfg,
            id,
            crypto,
            store,
            members,
            my_idx,
            queue: VecDeque::new(),
            seen: HashSet::new(),
            my_next_slot,
            slots: BTreeMap::new(),
            decided: BTreeMap::new(),
            exec_next: 1,
            executed_decisions: 0,
            reply_cache: HashMap::new(),
            stall_timer_slot: None,
            suspected: HashSet::new(),
        }
    }

    fn n(&self) -> usize {
        self.members.len()
    }

    fn quorum(&self) -> usize {
        self.cfg.global_quorum()
    }

    fn leader_of(&self, slot: u64) -> ReplicaId {
        self.members[(slot % self.n() as u64) as usize]
    }

    fn is_my_slot(&self, slot: u64) -> bool {
        (slot % self.n() as u64) as usize == self.my_idx
    }

    /// Decisions executed.
    pub fn executed_decisions(&self) -> u64 {
        self.executed_decisions
    }

    /// Store digest (tests).
    pub fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    // ------------------------------------------------------------------
    // Proposing
    // ------------------------------------------------------------------

    fn handle_request(&mut self, sb: SignedBatch, out: &mut Outbox) {
        if let Some(cached) = self.reply_cache.get(&sb.batch.client) {
            if cached.batch_seq == sb.batch.batch_seq {
                out.send(
                    sb.batch.client,
                    Message::Reply {
                        data: cached.clone(),
                        view: 0,
                    },
                );
                return;
            }
        }
        if !self.crypto.verify_batch(&sb) {
            return;
        }
        let key = (sb.batch.client, sb.batch.batch_seq);
        if !self.seen.insert(key) {
            return;
        }
        self.queue.push_back(sb);
        self.try_propose(out);
    }

    fn try_propose(&mut self, out: &mut Outbox) {
        let window = self.cfg.window * self.n() as u64;
        while !self.queue.is_empty() && self.my_next_slot < self.exec_next + window {
            let sb = self.queue.pop_front().expect("non-empty");
            let slot = self.my_next_slot;
            self.my_next_slot += self.n() as u64;
            self.propose(slot, sb, out);
        }
    }

    fn propose(&mut self, slot: u64, batch: SignedBatch, out: &mut Outbox) {
        let digest = batch.digest();
        let msg = Message::HsProposal {
            slot,
            phase: HsPhase::Prepare,
            batch: Some(batch),
            digest,
            justify: None,
        };
        out.multicast(self.members.clone(), &msg);
    }

    // ------------------------------------------------------------------
    // Replica side: voting
    // ------------------------------------------------------------------

    fn qc_valid(&self, qc: &HsQc, slot: u64, phase: HsPhase, digest: &Digest) -> bool {
        if qc.slot != slot || qc.phase != phase || qc.digest != *digest {
            return false;
        }
        if qc.votes.len() < self.quorum() {
            return false;
        }
        let mut seen = HashSet::with_capacity(qc.votes.len());
        for (r, _) in &qc.votes {
            if !seen.insert(*r) {
                return false;
            }
        }
        if self.crypto.checks_signatures() {
            let payload = hs_vote_payload(slot, phase, digest);
            for (r, sig) in &qc.votes {
                let Some(pk) = self.crypto.verifier().public_key_of((*r).into()) else {
                    return false;
                };
                if !self.crypto.verify(&pk, &payload, sig) {
                    return false;
                }
            }
        }
        true
    }

    fn vote(&mut self, slot: u64, phase: HsPhase, digest: Digest, out: &mut Outbox) {
        let leader = self.leader_of(slot);
        let sig = self.crypto.sign(&hs_vote_payload(slot, phase, &digest));
        out.send(
            leader,
            Message::HsVote {
                slot,
                phase,
                digest,
                replica: self.id,
                sig,
            },
        );
    }

    // The parameters mirror the wire message's fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn handle_proposal(
        &mut self,
        from: ReplicaId,
        slot: u64,
        phase: HsPhase,
        batch: Option<SignedBatch>,
        digest: Digest,
        justify: Option<HsQc>,
        out: &mut Outbox,
    ) {
        if from != self.leader_of(slot) {
            return;
        }
        if slot < self.exec_next {
            return; // already executed
        }
        match phase {
            HsPhase::Prepare => {
                let Some(batch) = batch else { return };
                if batch.digest() != digest || !self.crypto.verify_batch(&batch) {
                    return;
                }
                // A proposing leader is alive: clear any cached suspicion.
                self.suspected.remove(&from);
                let slot_state = self.slots.entry(slot).or_default();
                if slot_state.decided || slot_state.skip_voted {
                    // Never vote for a proposal on a slot we already
                    // skip-voted: the two quorums must not both form.
                    return;
                }
                if slot_state.digest.is_some() && slot_state.digest != Some(digest) {
                    return; // conflicting proposal
                }
                slot_state.batch = Some(batch);
                slot_state.digest = Some(digest);
                if slot_state.voted.insert(HsPhase::Prepare) {
                    self.vote(slot, HsPhase::Prepare, digest, out);
                }
            }
            HsPhase::PreCommit | HsPhase::Commit => {
                let prev = match phase {
                    HsPhase::PreCommit => HsPhase::Prepare,
                    _ => HsPhase::PreCommit,
                };
                let Some(qc) = justify else { return };
                if !self.qc_valid(&qc, slot, prev, &digest) {
                    return;
                }
                let slot_state = self.slots.entry(slot).or_default();
                if slot_state.decided || slot_state.digest != Some(digest) {
                    return;
                }
                if slot_state.voted.insert(phase) {
                    self.vote(slot, phase, digest, out);
                }
            }
            HsPhase::Decide => {
                let Some(qc) = justify else { return };
                if !self.qc_valid(&qc, slot, HsPhase::Commit, &digest) {
                    return;
                }
                let slot_state = self.slots.entry(slot).or_default();
                if slot_state.decided || slot_state.digest != Some(digest) {
                    return;
                }
                slot_state.decided = true;
                let batch = slot_state.batch.clone().expect("digest implies batch");
                self.decided.insert(slot, batch);
                self.try_execute(out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Leader side: aggregating votes into QCs
    // ------------------------------------------------------------------

    fn handle_vote(
        &mut self,
        from: ReplicaId,
        slot: u64,
        phase: HsPhase,
        digest: Digest,
        sig: Signature,
        out: &mut Outbox,
    ) {
        // Skip votes are broadcast to everyone and handled separately.
        if digest == skip_digest(slot) {
            self.handle_skip_vote(from, slot, sig, out);
            return;
        }
        if !self.is_my_slot(slot) || slot < self.exec_next {
            return;
        }
        if self.crypto.checks_signatures() {
            let Some(pk) = self.crypto.verifier().public_key_of(from.into()) else {
                return;
            };
            if !self
                .crypto
                .verify(&pk, &hs_vote_payload(slot, phase, &digest), &sig)
            {
                return;
            }
        }
        let quorum = self.quorum();
        let slot_state = self.slots.entry(slot).or_default();
        let votes = slot_state.votes.entry((phase, digest)).or_default();
        votes.insert(from, sig);
        if votes.len() >= quorum && slot_state.advanced.insert(phase) {
            let qc = HsQc {
                slot,
                phase,
                digest,
                votes: votes.iter().take(quorum).map(|(r, s)| (*r, *s)).collect(),
            };
            let next_phase = match phase {
                HsPhase::Prepare => HsPhase::PreCommit,
                HsPhase::PreCommit => HsPhase::Commit,
                HsPhase::Commit => HsPhase::Decide,
                HsPhase::Decide => return,
            };
            let msg = Message::HsProposal {
                slot,
                phase: next_phase,
                batch: None,
                digest,
                justify: Some(qc),
            };
            out.multicast(self.members.clone(), &msg);
        }
    }

    // ------------------------------------------------------------------
    // Stall handling: idle-leader no-ops and dead-leader skips
    // ------------------------------------------------------------------

    fn handle_skip_vote(&mut self, from: ReplicaId, slot: u64, sig: Signature, out: &mut Outbox) {
        if slot < self.exec_next {
            return;
        }
        if self.crypto.checks_signatures() {
            let Some(pk) = self.crypto.verifier().public_key_of(from.into()) else {
                return;
            };
            let payload = hs_vote_payload(slot, HsPhase::Prepare, &skip_digest(slot));
            if !self.crypto.verify(&pk, &payload, &sig) {
                return;
            }
        }
        let quorum = self.quorum();
        let join = self.cfg.global_f() + 1;
        let my_slot = self.is_my_slot(slot);

        let (votes, skip_voted, has_proposal) = {
            let slot_state = self.slots.entry(slot).or_default();
            if slot_state.decided {
                return;
            }
            slot_state.skip_votes.insert(from, sig);
            (
                slot_state.skip_votes.len(),
                slot_state.skip_voted,
                slot_state.digest.is_some(),
            )
        };

        // Join rule (like PBFT's view-change join): F + 1 distinct skip
        // votes mean at least one correct replica timed out on this
        // leader — join immediately instead of waiting for our own timer.
        if votes >= join && !skip_voted && !has_proposal && !my_slot {
            let d = skip_digest(slot);
            let own_sig = self
                .crypto
                .sign(&hs_vote_payload(slot, HsPhase::Prepare, &d));
            self.slots.entry(slot).or_default().skip_voted = true;
            let msg = Message::HsVote {
                slot,
                phase: HsPhase::Prepare,
                digest: d,
                replica: self.id,
                sig: own_sig,
            };
            out.multicast(self.members.clone(), &msg);
        }

        let slot_state = self.slots.entry(slot).or_default();
        if slot_state.skip_votes.len() >= quorum && !slot_state.decided {
            slot_state.decided = true;
            // Cache the suspicion: this leader's later slots are skipped
            // after a short grace period instead of the full timeout.
            let dead_leader = self.leader_of(slot);
            if dead_leader != self.id {
                self.suspected.insert(dead_leader);
            }
            self.decided
                .insert(slot, SignedBatch::noop(ClusterId(u16::MAX), slot));
            self.try_execute(out);
        }
    }

    /// After execution advances (or on start), watch the slot that blocks
    /// us: if it is ours and we are idle, fill it with a no-op after a
    /// short delay; if its leader is silent, skip-vote after the timeout.
    fn watch_blocking_slot(&mut self, out: &mut Outbox) {
        let slot = self.exec_next;
        if self.decided.contains_key(&slot) {
            return;
        }
        if self.stall_timer_slot == Some(slot) {
            return;
        }
        self.stall_timer_slot = Some(slot);
        // Suspected-dead leaders get a much shorter grace period; a fresh
        // suspicion waits the full progress timeout first.
        let timeout = if self.suspected.contains(&self.leader_of(slot)) {
            self.cfg.progress_timeout / 16
        } else {
            self.cfg.progress_timeout
        };
        out.set_timer(TimerKind::SlotNoOp { slot }, timeout);
    }

    fn on_stall_timer(&mut self, slot: u64, out: &mut Outbox) {
        if slot != self.exec_next || self.decided.contains_key(&slot) {
            self.stall_timer_slot = None;
            self.watch_blocking_slot(out);
            return;
        }
        let proposed = self
            .slots
            .get(&slot)
            .is_some_and(|s| s.digest.is_some() || s.decided);
        if self.is_my_slot(slot) {
            if !proposed {
                // Our own slot blocks the pipeline and we have nothing
                // queued for it: propose a no-op.
                if slot == self.my_next_slot {
                    self.my_next_slot += self.n() as u64;
                }
                self.propose(slot, SignedBatch::noop(ClusterId(u16::MAX), slot), out);
            }
        } else if !proposed {
            // Dead/silent leader: broadcast skip votes — for the blocked
            // slot AND the same leader's upcoming slots in the window, so
            // a dead leader is skipped at message-latency rate instead of
            // one timeout per slot (the role a pacemaker's view
            // synchronization plays in full HotStuff).
            let n = self.n() as u64;
            let preskip = self.cfg.window.max(64);
            for k in 0..preskip {
                let s = slot + k * n;
                let slot_state = self.slots.entry(s).or_default();
                if slot_state.skip_voted || slot_state.decided || slot_state.digest.is_some() {
                    continue;
                }
                slot_state.skip_voted = true;
                let d = skip_digest(s);
                let sig = self.crypto.sign(&hs_vote_payload(s, HsPhase::Prepare, &d));
                let msg = Message::HsVote {
                    slot: s,
                    phase: HsPhase::Prepare,
                    digest: d,
                    replica: self.id,
                    sig,
                };
                out.multicast(self.members.clone(), &msg);
            }
        }
        // Keep watching with a fresh timer.
        self.stall_timer_slot = None;
        self.watch_blocking_slot(out);
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn try_execute(&mut self, out: &mut Outbox) {
        while let Some(batch) = self.decided.remove(&self.exec_next) {
            let slot = self.exec_next;
            self.exec_next += 1;
            self.executed_decisions += 1;
            let (result, results) =
                execute_batch_with_results(&mut self.store, self.cfg.exec_mode, &batch);
            if !batch.is_noop() {
                let data = ReplyData {
                    client: batch.batch.client,
                    batch_seq: batch.batch.batch_seq,
                    seq: slot,
                    // Slots execute strictly in order, one block each.
                    block_height: self.executed_decisions,
                    result_digest: result,
                    results,
                    txns: batch.batch.len() as u32,
                };
                self.reply_cache.insert(batch.batch.client, data.clone());
                out.send(batch.batch.client, Message::Reply { data, view: 0 });
            }
            out.decided(Decision {
                seq: slot,
                entries: vec![DecisionEntry {
                    origin: None,
                    batch: batch.clone(),
                }],
                state_digest: self.store.state_digest(),
            });
            self.slots.remove(&slot);
        }
        self.try_propose(out);
        self.watch_blocking_slot(out);
    }
}

impl ReplicaProtocol for HotStuffReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, out: &mut Outbox) {
        self.watch_blocking_slot(out);
    }

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Request(sb) | Message::Forward(sb) => self.handle_request(sb, out),
            Message::HsProposal {
                slot,
                phase,
                batch,
                digest,
                justify,
            } => {
                if let NodeId::Replica(from) = from {
                    self.handle_proposal(from, slot, phase, batch, digest, justify, out);
                }
            }
            Message::HsVote {
                slot,
                phase,
                digest,
                replica,
                sig,
            } => {
                if let NodeId::Replica(from) = from {
                    if from == replica {
                        self.handle_vote(from, slot, phase, digest, sig, out);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer: TimerKind, out: &mut Outbox) {
        if let TimerKind::SlotNoOp { slot } = timer {
            self.on_stall_timer(slot, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;
    use crate::clients::synthetic_source;
    use crate::config::ExecMode;
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;
    use std::collections::VecDeque as Q;

    fn setup(n: usize) -> (Vec<HotStuffReplica>, KeyStore, ProtocolConfig) {
        let system = SystemConfig::geo(1, n).unwrap();
        let mut cfg = ProtocolConfig::new(system.clone());
        cfg.exec_mode = ExecMode::Real;
        let ks = KeyStore::new(44);
        let replicas = system
            .all_replicas()
            .map(|r| {
                let signer = ks.register(NodeId::Replica(r));
                let crypto = CryptoCtx::new(signer, ks.verifier(), true);
                HotStuffReplica::new(cfg.clone(), r, crypto, KvStore::with_ycsb_records(50))
            })
            .collect();
        (replicas, ks, cfg)
    }

    fn signed(ks: &KeyStore, client: ClientId, seq: u64) -> SignedBatch {
        let signer = ks.register(NodeId::Client(client));
        let mut src = synthetic_source(client, 3, 30);
        let b = src(seq);
        let sig = signer.sign(b.digest().as_bytes());
        SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch: b,
        }
    }

    fn route(
        replicas: &mut [HotStuffReplica],
        initial: Vec<(NodeId, NodeId, Message)>,
        skip: Option<usize>,
    ) -> Vec<(ReplicaId, Decision)> {
        let mut queue: Q<(NodeId, NodeId, Message)> = initial.into();
        let mut decisions = Vec::new();
        let mut steps = 0;
        while let Some((from, to, msg)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 2_000_000);
            let NodeId::Replica(rid) = to else { continue };
            let idx = rid.index as usize;
            if Some(idx) == skip {
                continue;
            }
            let mut out = Outbox::new();
            replicas[idx].on_message(SimTime::ZERO, from, msg, &mut out);
            for a in out.take() {
                match a {
                    Action::Send { to: t, msg: m } => queue.push_back((to, t, m)),
                    Action::Decided(d) => decisions.push((rid, d)),
                    _ => {}
                }
            }
        }
        decisions
    }

    #[test]
    fn four_phase_flow_decides_and_executes() {
        let (mut replicas, ks, _cfg) = setup(4);
        let client = ClientId::new(0, 0);
        let sb = signed(&ks, client, 0);
        // Client's home replica is index 0 % 4 = 0; replica 0 owns slots
        // 4, 8, ... but slot 1 belongs to replica 1, so execution of the
        // proposal (slot 4) requires slots 1-3 — fill them via the skip
        // path in this unit test by sending requests to replicas 1,2,3.
        let mut initial = vec![];
        for i in 1..4u32 {
            let c = ClientId::new(0, i);
            let b = signed(&ks, c, 0);
            initial.push((
                NodeId::Client(c),
                ReplicaId::new(0, i as u16).into(),
                Message::Request(b),
            ));
        }
        initial.push((
            NodeId::Client(client),
            ReplicaId::new(0, 0).into(),
            Message::Request(sb),
        ));
        let decisions = route(&mut replicas, initial, None);
        // Slots 1..4 decided on all 4 replicas.
        assert_eq!(decisions.len(), 16);
        let s0 = replicas[0].state_digest();
        assert!(replicas.iter().all(|r| r.state_digest() == s0));
        for r in &replicas {
            assert_eq!(r.executed_decisions(), 4);
        }
    }

    #[test]
    fn proposal_from_wrong_leader_ignored() {
        let (mut replicas, ks, _cfg) = setup(4);
        let sb = signed(&ks, ClientId::new(0, 7), 0);
        let digest = sb.digest();
        let mut out = Outbox::new();
        // Slot 1 belongs to replica 1; replica 2 tries to propose it.
        replicas[3].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 2).into(),
            Message::HsProposal {
                slot: 1,
                phase: HsPhase::Prepare,
                batch: Some(sb),
                digest,
                justify: None,
            },
            &mut out,
        );
        assert!(out.take().is_empty());
    }

    #[test]
    fn qc_with_too_few_votes_rejected() {
        let (mut replicas, ks, _cfg) = setup(4);
        let sb = signed(&ks, ClientId::new(0, 8), 0);
        let digest = sb.digest();
        // Deliver a proper Prepare for slot 1 (leader = replica 1).
        let mut out = Outbox::new();
        replicas[3].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 1).into(),
            Message::HsProposal {
                slot: 1,
                phase: HsPhase::Prepare,
                batch: Some(sb),
                digest,
                justify: None,
            },
            &mut out,
        );
        assert_eq!(out.take().len(), 1, "prepare vote sent");
        // Now a PreCommit with an undersized QC.
        let mut out = Outbox::new();
        replicas[3].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 1).into(),
            Message::HsProposal {
                slot: 1,
                phase: HsPhase::PreCommit,
                batch: None,
                digest,
                justify: Some(HsQc {
                    slot: 1,
                    phase: HsPhase::Prepare,
                    digest,
                    votes: vec![(ReplicaId::new(0, 0), Signature::default())],
                }),
            },
            &mut out,
        );
        assert!(out.take().is_empty(), "undersized QC must not advance");
    }

    #[test]
    fn dead_leader_slot_is_skipped_by_quorum() {
        let (mut replicas, ks, _cfg) = setup(4);
        // Replica 1 (leader of slot 1) is dead. Other replicas' stall
        // timers fire, they broadcast skip votes.
        let mut msgs = Vec::new();
        for i in [0usize, 2, 3] {
            let mut out = Outbox::new();
            replicas[i].on_timer(SimTime::ZERO, TimerKind::SlotNoOp { slot: 1 }, &mut out);
            // on_timer was armed at start in real flow; emulate arming.
            for a in out.take() {
                if let Action::Send { to, msg } = a {
                    msgs.push((NodeId::Replica(replicas[i].id()), to, msg));
                }
            }
        }
        let decisions = route(&mut replicas, msgs, Some(1));
        // Slot 1 decided as no-op on the three live replicas.
        let live: Vec<_> = decisions
            .iter()
            .filter(|(r, d)| r.index != 1 && d.seq == 1)
            .collect();
        assert_eq!(live.len(), 3);
        for (_, d) in live {
            assert!(d.entries[0].batch.is_noop());
        }
        let _ = ks;
    }

    #[test]
    fn idle_own_slot_is_filled_with_noop_on_timer() {
        let (mut replicas, _ks, _cfg) = setup(4);
        // Replica 1 owns blocking slot 1 and has an empty queue; its stall
        // timer fires -> it proposes a no-op through the normal 4-phase
        // path.
        let mut out = Outbox::new();
        replicas[1].on_timer(SimTime::ZERO, TimerKind::SlotNoOp { slot: 1 }, &mut out);
        let msgs: Vec<_> = out
            .take()
            .into_iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((NodeId::Replica(ReplicaId::new(0, 1)), to, msg)),
                _ => None,
            })
            .collect();
        assert!(msgs.iter().any(|(_, _, m)| matches!(
            m,
            Message::HsProposal {
                slot: 1,
                phase: HsPhase::Prepare,
                ..
            }
        )));
        let decisions = route(&mut replicas, msgs, None);
        assert_eq!(decisions.len(), 4, "no-op decided everywhere");
        assert!(decisions.iter().all(|(_, d)| d.entries[0].batch.is_noop()));
    }
}
