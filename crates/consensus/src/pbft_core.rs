//! The reusable PBFT engine.
//!
//! §2.2 of the paper: "GeoBFT relies on Pbft, a primary-backup protocol in
//! which one replica acts as the primary, while all the other replicas act
//! as backups", with the three normal-case phases (pre-prepare, prepare,
//! commit), checkpoints, and local view-changes.
//!
//! This module implements that engine once, parameterized by a
//! [`Scope`] — the member set it runs over:
//!
//! * `Scope::Global` — all `z·n` replicas: plain PBFT (the baseline in
//!   every figure of the paper);
//! * `Scope::Cluster(c)` — the `n` replicas of cluster `c`: the local
//!   replication step of GeoBFT (§2.2) and Steward's primary-cluster
//!   agreement.
//!
//! The engine is sans-io like everything else: it emits sends/timers into
//! an [`Outbox`] and reports state transitions as [`CoreEvent`]s that the
//! embedding protocol interprets (plain PBFT executes; GeoBFT builds a
//! commit certificate and starts inter-cluster sharing).

use crate::api::{Outbox, TimerKind};
use crate::certificate::{commit_payload, CommitSig};
use crate::checkpoint::CheckpointTracker;
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::messages::{Message, PreparedProof, Scope};
use crate::types::SignedBatch;
use rdb_common::ids::{ClientId, ClusterId, ReplicaId};
use rdb_common::time::SimDuration;
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// State transitions surfaced to the embedding protocol.
#[derive(Debug, Clone)]
pub enum CoreEvent {
    /// An instance gathered `n - f` commits: the batch is locally
    /// replicated. `commits` are exactly `n - f` signed commit votes
    /// (sorted by replica index), i.e. the material of a commit
    /// certificate.
    Committed {
        /// The sequence number (GeoBFT: the round).
        seq: u64,
        /// The replicated batch.
        batch: SignedBatch,
        /// `n - f` commit signatures.
        commits: Vec<CommitSig>,
    },
    /// A view change completed and `view` is installed.
    ViewInstalled {
        /// The new view.
        view: u64,
    },
    /// A checkpoint became stable; the log below `seq` was pruned.
    CheckpointStable {
        /// The stable sequence number.
        seq: u64,
    },
}

/// The signing payload for a commit vote in this scope. Cluster scopes use
/// the real cluster id so votes aggregate into inter-cluster certificates;
/// the global scope uses a reserved tag.
pub fn scoped_commit_payload(scope: Scope, seq: u64, digest: &Digest) -> Vec<u8> {
    let cluster = match scope {
        Scope::Cluster(c) => c,
        Scope::Global => ClusterId(u16::MAX),
    };
    commit_payload(cluster, seq, digest)
}

/// Per-sequence-number consensus state.
#[derive(Debug, Default)]
struct Instance {
    /// View the pre-prepare was accepted in.
    view: u64,
    digest: Option<Digest>,
    batch: Option<SignedBatch>,
    /// Prepare votes, keyed by digest (votes may arrive before the
    /// pre-prepare).
    prepares: HashMap<Digest, HashSet<ReplicaId>>,
    /// Commit votes with their signatures, keyed by digest.
    commits: HashMap<Digest, BTreeMap<ReplicaId, Signature>>,
    preprepared: bool,
    prepared: bool,
    committed: bool,
}

/// A received view-change vote.
#[derive(Debug, Clone)]
struct VcVote {
    stable_seq: u64,
    prepared: Vec<PreparedProof>,
}

/// The PBFT engine for one replica within one scope.
pub struct PbftCore {
    scope: Scope,
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    members: Vec<ReplicaId>,
    n: usize,
    f: usize,

    view: u64,
    in_view_change: bool,
    /// The view we are currently voting for (>= view + 1 during a change).
    vc_target: u64,

    insts: BTreeMap<u64, Instance>,
    /// Checkpoint certification (quorum tracking and the stable
    /// watermark); sequence numbers <= its stable seq are pruned.
    ckpt: CheckpointTracker,
    /// Primary: next sequence number to assign.
    next_propose: u64,
    /// Primary: queued client batches awaiting proposal.
    pending: VecDeque<SignedBatch>,
    /// Primary: (client, batch_seq) pairs already proposed (dedupe for
    /// retransmissions).
    proposed: HashSet<(ClientId, u64)>,
    /// Backup: requests we forwarded to the primary and still await, by
    /// digest. Non-empty => progress timer armed.
    awaiting: HashMap<Digest, SignedBatch>,

    /// View-change votes: target view -> voter -> vote.
    vc_votes: BTreeMap<u64, HashMap<ReplicaId, VcVote>>,
    /// Progress timer bookkeeping.
    timer_armed: bool,
    current_timeout: SimDuration,
}

impl PbftCore {
    /// Create the engine for `id` within `scope`.
    pub fn new(scope: Scope, cfg: ProtocolConfig, id: ReplicaId, crypto: CryptoCtx) -> PbftCore {
        let members: Vec<ReplicaId> = match scope {
            Scope::Global => cfg.system.all_replicas().collect(),
            Scope::Cluster(c) => cfg.system.replicas_of(c).collect(),
        };
        let (n, f) = match scope {
            Scope::Global => (cfg.global_n(), cfg.global_f()),
            Scope::Cluster(_) => (cfg.system.n(), cfg.system.f()),
        };
        debug_assert!(members.contains(&id));
        let timeout = cfg.progress_timeout;
        let ckpt = CheckpointTracker::new(cfg.checkpoint_interval, n - f);
        PbftCore {
            scope,
            cfg,
            id,
            crypto,
            members,
            n,
            f,
            view: 0,
            in_view_change: false,
            vc_target: 0,
            insts: BTreeMap::new(),
            ckpt,
            next_propose: 1,
            pending: VecDeque::new(),
            proposed: HashSet::new(),
            awaiting: HashMap::new(),
            vc_votes: BTreeMap::new(),
            timer_armed: false,
            current_timeout: timeout,
        }
    }

    /// Strong quorum `n - f` for this scope.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Last stable checkpoint sequence.
    pub fn stable_seq(&self) -> u64 {
        self.ckpt.stable_seq()
    }

    /// The primary of view `v` within this scope's member list.
    pub fn primary_of(&self, v: u64) -> ReplicaId {
        self.members[(v % self.n as u64) as usize]
    }

    /// The current primary.
    pub fn primary(&self) -> ReplicaId {
        self.primary_of(self.view)
    }

    /// Is this replica the current primary?
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Next sequence number the primary will assign.
    pub fn next_propose(&self) -> u64 {
        self.next_propose
    }

    /// Number of queued-but-unproposed batches at the primary.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    fn scope_matches(&self, scope: Scope) -> bool {
        scope == self.scope
    }

    fn is_member(&self, r: ReplicaId) -> bool {
        match self.scope {
            Scope::Global => {
                r.cluster.as_usize() < self.cfg.system.clusters
                    && (r.index as usize) < self.cfg.system.replicas_per_cluster
            }
            Scope::Cluster(c) => {
                r.cluster == c && (r.index as usize) < self.cfg.system.replicas_per_cluster
            }
        }
    }

    fn inst(&mut self, seq: u64) -> &mut Instance {
        self.insts.entry(seq).or_default()
    }

    // ------------------------------------------------------------------
    // Request intake (primary path)
    // ------------------------------------------------------------------

    /// Queue a client batch at the primary and propose as the window
    /// allows. Called by the embedder for `Request`/`Forward` messages
    /// that reach the current primary. Non-primaries should use
    /// [`PbftCore::track_forwarded`] instead.
    pub fn enqueue_request(&mut self, sb: SignedBatch, out: &mut Outbox) {
        if !self.crypto.verify_batch(&sb) {
            return;
        }
        let key = (sb.batch.client, sb.batch.batch_seq);
        if self.proposed.contains(&key) {
            return;
        }
        self.proposed.insert(key);
        self.pending.push_back(sb);
        self.try_propose(out);
    }

    /// GeoBFT §2.5: if this primary has nothing to propose for `round` but
    /// remote clusters are already working on it, propose a no-op so the
    /// round can complete. Returns true if a no-op was proposed.
    pub fn propose_noop_if_idle(&mut self, round: u64, out: &mut Outbox) -> bool {
        if !self.is_primary() || self.in_view_change {
            return false;
        }
        if !self.pending.is_empty() || self.next_propose != round {
            return false;
        }
        let cluster = match self.scope {
            Scope::Cluster(c) => c,
            Scope::Global => ClusterId(u16::MAX),
        };
        self.pending.push_back(SignedBatch::noop(cluster, round));
        self.try_propose(out);
        true
    }

    /// Track a request this backup forwarded to the primary; arms the
    /// progress timer that backs the view-change path.
    pub fn track_forwarded(&mut self, sb: SignedBatch, out: &mut Outbox) {
        if !self.crypto.verify_batch(&sb) {
            return;
        }
        let d = sb.digest();
        let newly = self.awaiting.insert(d, sb).is_none();
        if newly {
            self.ensure_timer(out);
        }
    }

    fn try_propose(&mut self, out: &mut Outbox) {
        if !self.is_primary() || self.in_view_change {
            return;
        }
        let high_water = self.stable_seq() + self.cfg.window;
        while self.next_propose <= high_water {
            let Some(sb) = self.pending.pop_front() else {
                break;
            };
            let seq = self.next_propose;
            self.next_propose += 1;
            let digest = sb.digest();
            let msg = Message::PrePrepare {
                scope: self.scope,
                view: self.view,
                seq,
                batch: sb,
                digest,
            };
            out.multicast(self.members.iter().copied(), &msg);
        }
    }

    // ------------------------------------------------------------------
    // Normal-case three-phase protocol
    // ------------------------------------------------------------------

    /// Handle a pre-prepare.
    // The parameters mirror the wire message's fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub fn on_preprepare(
        &mut self,
        from: ReplicaId,
        scope: Scope,
        view: u64,
        seq: u64,
        batch: SignedBatch,
        digest: Digest,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        if !self.scope_matches(scope) || self.in_view_change || view != self.view {
            return vec![];
        }
        if from != self.primary_of(view) {
            return vec![];
        }
        if seq <= self.stable_seq() || seq > self.stable_seq() + self.cfg.window {
            return vec![];
        }
        if batch.digest() != digest || !self.crypto.verify_batch(&batch) {
            return vec![];
        }
        {
            let inst = self.inst(seq);
            if inst.preprepared {
                // Only re-send our prepare for the identical proposal; a
                // conflicting proposal from the primary is ignored (and
                // will starve the primary into a view change).
                if inst.digest != Some(digest) {
                    return vec![];
                }
            } else {
                inst.preprepared = true;
                inst.view = view;
                inst.digest = Some(digest);
                inst.batch = Some(batch);
            }
        }
        // Keep the primary honest about proposal numbering it observed.
        if self.next_propose <= seq {
            self.next_propose = seq + 1;
        }
        let msg = Message::Prepare {
            scope: self.scope,
            view,
            seq,
            digest,
        };
        out.multicast(self.members.iter().copied(), &msg);
        self.ensure_timer(out);
        self.check_progress(seq, out)
    }

    /// Handle a prepare vote.
    pub fn on_prepare(
        &mut self,
        from: ReplicaId,
        scope: Scope,
        view: u64,
        seq: u64,
        digest: Digest,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        if !self.scope_matches(scope) || view != self.view || self.in_view_change {
            return vec![];
        }
        if !self.is_member(from) || seq <= self.stable_seq() {
            return vec![];
        }
        self.inst(seq)
            .prepares
            .entry(digest)
            .or_default()
            .insert(from);
        self.check_progress(seq, out)
    }

    /// Handle a (signed) commit vote.
    // The parameters mirror the wire message's fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    pub fn on_commit(
        &mut self,
        from: ReplicaId,
        scope: Scope,
        view: u64,
        seq: u64,
        digest: Digest,
        sig: Signature,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        if !self.scope_matches(scope) || !self.is_member(from) || seq <= self.stable_seq() {
            return vec![];
        }
        // Commits are accepted across views: the signature binds only
        // (scope, seq, digest), so votes from an older view still count
        // toward the certificate (Lemma 2.3 gives digest uniqueness).
        let _ = view;
        if self.crypto.checks_signatures() {
            let payload = scoped_commit_payload(self.scope, seq, &digest);
            let Some(pk) = self.crypto.verifier().public_key_of(from.into()) else {
                return vec![];
            };
            if !self.crypto.verify(&pk, &payload, &sig) {
                return vec![];
            }
        }
        self.inst(seq)
            .commits
            .entry(digest)
            .or_default()
            .insert(from, sig);
        self.check_progress(seq, out)
    }

    /// Advance an instance through prepared/committed as votes allow.
    fn check_progress(&mut self, seq: u64, out: &mut Outbox) -> Vec<CoreEvent> {
        let quorum = self.quorum();
        let scope = self.scope;
        let view = self.view;

        let Some(inst) = self.insts.get_mut(&seq) else {
            return vec![];
        };
        if !inst.preprepared || inst.committed {
            return vec![];
        }
        let digest = inst.digest.expect("preprepared implies digest");

        let mut events = Vec::new();

        if !inst.prepared && inst.prepares.get(&digest).map_or(0, |s| s.len()) >= quorum {
            inst.prepared = true;
            let payload = scoped_commit_payload(scope, seq, &digest);
            let sig = self.crypto.sign(&payload);
            let msg = Message::Commit {
                scope,
                view,
                seq,
                digest,
                sig,
            };
            out.multicast(self.members.iter().copied(), &msg);
        }

        let inst = self.insts.get_mut(&seq).expect("still present");
        if inst.prepared
            && !inst.committed
            && inst.commits.get(&digest).map_or(0, |m| m.len()) >= quorum
        {
            inst.committed = true;
            let batch = inst.batch.clone().expect("preprepared implies batch");
            // Deterministically take the quorum lowest-index votes so all
            // replicas build identical-size certificates (the paper's
            // 6.4 kB figure assumes exactly n - f commits).
            let commits: Vec<CommitSig> = inst.commits[&digest]
                .iter()
                .take(quorum)
                .map(|(r, s)| CommitSig {
                    replica: *r,
                    sig: *s,
                })
                .collect();
            self.awaiting.remove(&digest);
            events.push(CoreEvent::Committed {
                seq,
                batch,
                commits,
            });
            // Progress was made: give the remaining work a fresh timeout.
            self.reset_timeout();
            self.ensure_timer(out);
        }
        events
    }

    // ------------------------------------------------------------------
    // Checkpoints
    // ------------------------------------------------------------------

    /// The embedder executed up to `seq` and took a state snapshot; gossip
    /// it so the group can establish a stable checkpoint (and prune).
    pub fn record_checkpoint(&mut self, seq: u64, state: Digest, out: &mut Outbox) {
        if !self.ckpt.record_own(seq, state) {
            return;
        }
        let msg = Message::Checkpoint {
            scope: self.scope,
            seq,
            state,
        };
        out.multicast(self.members.iter().copied(), &msg);
    }

    /// Handle a checkpoint vote.
    pub fn on_checkpoint(
        &mut self,
        from: ReplicaId,
        scope: Scope,
        seq: u64,
        state: Digest,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        if !self.scope_matches(scope) || !self.is_member(from) {
            return vec![];
        }
        if let Some(stable) = self.ckpt.on_vote(from, seq, state) {
            self.prune_below(stable.seq);
            self.try_propose(out);
            return vec![CoreEvent::CheckpointStable { seq: stable.seq }];
        }
        vec![]
    }

    fn make_stable(&mut self, seq: u64) {
        if seq <= self.stable_seq() {
            return;
        }
        // A stability learned through a new-view message carries no state
        // digest of its own; the tracker only needs the watermark.
        self.ckpt.force_stable(seq, Digest::ZERO);
        self.prune_below(seq);
    }

    /// Drop consensus state the stable checkpoint `seq` covers.
    fn prune_below(&mut self, seq: u64) {
        if self.next_propose <= seq {
            self.next_propose = seq + 1;
        }
        self.insts.retain(|s, _| *s > seq);
    }

    // ------------------------------------------------------------------
    // View changes
    // ------------------------------------------------------------------

    /// Arm the progress timer if pending work exists and it is not armed.
    fn ensure_timer(&mut self, out: &mut Outbox) {
        let pending = self.has_pending_work();
        if pending && !self.timer_armed {
            self.timer_armed = true;
            out.set_timer(TimerKind::Progress, self.current_timeout);
        } else if !pending && self.timer_armed {
            self.timer_armed = false;
            out.cancel_timer(TimerKind::Progress);
        } else if pending && self.timer_armed {
            // Re-arm to push the deadline out after progress.
            out.set_timer(TimerKind::Progress, self.current_timeout);
        }
    }

    fn reset_timeout(&mut self) {
        self.current_timeout = self.cfg.progress_timeout;
    }

    fn has_pending_work(&self) -> bool {
        if self.in_view_change {
            return true;
        }
        if !self.awaiting.is_empty() {
            return true;
        }
        self.insts.values().any(|i| i.preprepared && !i.committed)
    }

    /// The progress timer fired: no progress within the timeout. Start (or
    /// escalate) a view change. The embedder routes
    /// [`TimerKind::Progress`] here. GeoBFT's remote view-change protocol
    /// calls [`PbftCore::force_view_change`] instead.
    pub fn on_progress_timeout(&mut self, out: &mut Outbox) {
        if !self.has_pending_work() {
            self.timer_armed = false;
            return;
        }
        self.force_view_change(out);
    }

    /// Vote to replace the current primary (§2.2 "local view-changes" /
    /// Figure 7 line 17 "detect failure of P_C1").
    pub fn force_view_change(&mut self, out: &mut Outbox) {
        let target = if self.in_view_change {
            self.vc_target + 1 // escalate past a stalled change
        } else {
            self.view + 1
        };
        self.vote_view_change(target, out);
    }

    fn vote_view_change(&mut self, target: u64, out: &mut Outbox) {
        self.in_view_change = true;
        self.vc_target = target;
        // Exponential back-off on repeated changes.
        self.current_timeout = self.current_timeout.doubled();
        self.timer_armed = true;
        out.set_timer(TimerKind::Progress, self.current_timeout);

        let prepared: Vec<PreparedProof> = self
            .insts
            .iter()
            .filter(|(_, i)| i.prepared)
            .map(|(seq, i)| PreparedProof {
                seq: *seq,
                digest: i.digest.expect("prepared implies digest"),
                batch: i.batch.clone().expect("prepared implies batch"),
            })
            .collect();
        let msg = Message::ViewChange {
            scope: self.scope,
            new_view: target,
            stable_seq: self.stable_seq(),
            prepared,
        };
        out.multicast(self.members.iter().copied(), &msg);
    }

    /// Handle a view-change vote.
    pub fn on_view_change(
        &mut self,
        from: ReplicaId,
        scope: Scope,
        new_view: u64,
        stable_seq: u64,
        prepared: Vec<PreparedProof>,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        if !self.scope_matches(scope) || !self.is_member(from) || new_view <= self.view {
            return vec![];
        }
        self.vc_votes.entry(new_view).or_default().insert(
            from,
            VcVote {
                stable_seq,
                prepared,
            },
        );

        let votes = &self.vc_votes[&new_view];

        // Join rule: f + 1 distinct replicas voting for a higher view than
        // we are targeting means at least one non-faulty replica timed
        // out; join them so the change completes.
        let join_threshold = self.f + 1;
        if votes.len() >= join_threshold && (!self.in_view_change || self.vc_target < new_view) {
            self.vote_view_change(new_view, out);
        }

        // New-primary rule: the primary of `new_view` installs it after a
        // strong quorum of votes.
        let votes = &self.vc_votes[&new_view];
        if self.primary_of(new_view) == self.id && votes.len() >= self.quorum() {
            return self.install_as_primary(new_view, out);
        }
        vec![]
    }

    fn install_as_primary(&mut self, new_view: u64, out: &mut Outbox) -> Vec<CoreEvent> {
        let votes = self.vc_votes.remove(&new_view).unwrap_or_default();
        let max_stable = votes
            .values()
            .map(|v| v.stable_seq)
            .max()
            .unwrap_or_default()
            .max(self.stable_seq());

        // Union of prepared instances above the stable point. PBFT safety
        // (Lemma 2.3) guarantees at most one digest per seq among correct
        // votes; conflicts cannot gather quorums, so first-wins is safe.
        let mut chosen: BTreeMap<u64, SignedBatch> = BTreeMap::new();
        for vote in votes.values() {
            for p in &vote.prepared {
                if p.seq > max_stable && p.batch.digest() == p.digest {
                    chosen.entry(p.seq).or_insert_with(|| p.batch.clone());
                }
            }
        }
        // Fill gaps with no-ops so the sequence space stays dense.
        let max_seq = chosen.keys().max().copied().unwrap_or(max_stable);
        let noop_cluster = match self.scope {
            Scope::Cluster(c) => c,
            Scope::Global => ClusterId(u16::MAX),
        };
        for seq in (max_stable + 1)..=max_seq {
            chosen
                .entry(seq)
                .or_insert_with(|| SignedBatch::noop(noop_cluster, seq));
        }

        let preprepares: Vec<(u64, SignedBatch)> = chosen.into_iter().collect();
        let msg = Message::NewView {
            scope: self.scope,
            view: new_view,
            preprepares: preprepares.clone(),
            stable_seq: max_stable,
        };
        out.multicast(self.members.iter().copied(), &msg);
        // Install locally through the same path as everyone else (we will
        // receive our own NewView); nothing else to do here.
        vec![]
    }

    /// Handle a new-view installation.
    pub fn on_new_view(
        &mut self,
        from: ReplicaId,
        scope: Scope,
        view: u64,
        preprepares: Vec<(u64, SignedBatch)>,
        stable_seq: u64,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        if !self.scope_matches(scope) || view < self.view {
            return vec![];
        }
        if from != self.primary_of(view) {
            return vec![];
        }
        if view == self.view && !self.in_view_change {
            return vec![]; // already installed
        }

        self.view = view;
        self.in_view_change = false;
        self.vc_target = view;
        self.make_stable(stable_seq);
        self.vc_votes.retain(|v, _| *v > view);
        self.reset_timeout();

        let mut events = vec![CoreEvent::ViewInstalled { view }];

        // Treat the re-proposals as fresh pre-prepares in the new view.
        let mut max_seq = self.stable_seq();
        for (seq, batch) in preprepares {
            max_seq = max_seq.max(seq);
            let digest = batch.digest();
            if seq <= self.stable_seq() {
                continue;
            }
            let committed = {
                let inst = self.inst(seq);
                if inst.committed {
                    true
                } else {
                    inst.preprepared = true;
                    inst.view = view;
                    inst.digest = Some(digest);
                    inst.batch = Some(batch);
                    // Re-run the prepare->commit phases in the new view so
                    // the (possibly lost) commit broadcast is re-sent.
                    // Collected votes are kept: prepare votes match on
                    // (seq, digest) and commit signatures bind (scope,
                    // seq, digest) independent of the view.
                    inst.prepared = false;
                    false
                }
            };
            if !committed {
                let msg = Message::Prepare {
                    scope: self.scope,
                    view,
                    seq,
                    digest,
                };
                out.multicast(self.members.iter().copied(), &msg);
                events.extend(self.check_progress(seq, out));
            }
        }
        if self.next_propose <= max_seq {
            self.next_propose = max_seq + 1;
        }
        self.ensure_timer(out);
        // The new primary resumes proposing queued requests.
        self.try_propose(out);
        events
    }

    /// Expose whether an instance is committed (tests / embedders).
    pub fn is_committed(&self, seq: u64) -> bool {
        self.insts
            .get(&seq)
            .map_or(seq <= self.stable_seq(), |i| i.committed)
    }

    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Dispatch any PBFT-core message to the right handler. Non-core
    /// messages (client path, GeoBFT global messages, ...) are ignored —
    /// embedders handle those themselves.
    pub fn handle_message(
        &mut self,
        from: ReplicaId,
        msg: Message,
        out: &mut Outbox,
    ) -> Vec<CoreEvent> {
        match msg {
            Message::PrePrepare {
                scope,
                view,
                seq,
                batch,
                digest,
            } => self.on_preprepare(from, scope, view, seq, batch, digest, out),
            Message::Prepare {
                scope,
                view,
                seq,
                digest,
            } => self.on_prepare(from, scope, view, seq, digest, out),
            Message::Commit {
                scope,
                view,
                seq,
                digest,
                sig,
            } => self.on_commit(from, scope, view, seq, digest, sig, out),
            Message::Checkpoint { scope, seq, state } => {
                self.on_checkpoint(from, scope, seq, state, out)
            }
            Message::ViewChange {
                scope,
                new_view,
                stable_seq,
                prepared,
            } => self.on_view_change(from, scope, new_view, stable_seq, prepared, out),
            Message::NewView {
                scope,
                view,
                preprepares,
                stable_seq,
            } => self.on_new_view(from, scope, view, preprepares, stable_seq, out),
            _ => vec![],
        }
    }
}

impl std::fmt::Debug for PbftCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PbftCore")
            .field("scope", &self.scope)
            .field("id", &self.id)
            .field("view", &self.view)
            .field("stable_seq", &self.stable_seq())
            .field("in_view_change", &self.in_view_change)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{route_core_messages, TestCluster};
    use rdb_common::config::SystemConfig;

    fn cluster() -> TestCluster {
        TestCluster::new(4)
    }

    #[test]
    fn normal_case_commits_on_all_replicas() {
        let mut tc = cluster();
        let batch = tc.signed_batch(0, 0, 3);
        let mut out = Outbox::new();
        tc.cores[0].enqueue_request(batch.clone(), &mut out);
        let events = route_core_messages(&mut tc.cores, out);
        let committed: Vec<_> = events
            .iter()
            .filter(|(_, e)| matches!(e, CoreEvent::Committed { .. }))
            .collect();
        assert_eq!(committed.len(), 4, "all four replicas commit");
        for (_, e) in committed {
            if let CoreEvent::Committed {
                seq,
                batch: b,
                commits,
            } = e
            {
                assert_eq!(*seq, 1);
                assert_eq!(b.digest(), batch.digest());
                assert_eq!(commits.len(), 3); // n - f = 3
            }
        }
    }

    #[test]
    fn duplicate_requests_propose_once() {
        let mut tc = cluster();
        let batch = tc.signed_batch(0, 0, 2);
        let mut out = Outbox::new();
        tc.cores[0].enqueue_request(batch.clone(), &mut out);
        tc.cores[0].enqueue_request(batch, &mut out);
        let events = route_core_messages(&mut tc.cores, out);
        let commits_at_r0 = events
            .iter()
            .filter(|(idx, e)| *idx == 0 && matches!(e, CoreEvent::Committed { .. }))
            .count();
        assert_eq!(commits_at_r0, 1);
        assert_eq!(tc.cores[0].next_propose(), 2);
    }

    #[test]
    fn commits_carry_verifiable_certificate_material() {
        let mut tc = cluster();
        let batch = tc.signed_batch(0, 0, 1);
        let mut out = Outbox::new();
        tc.cores[0].enqueue_request(batch, &mut out);
        let events = route_core_messages(&mut tc.cores, out);
        let (
            _,
            CoreEvent::Committed {
                seq,
                batch,
                commits,
            },
        ) = events
            .iter()
            .find(|(_, e)| matches!(e, CoreEvent::Committed { .. }))
            .expect("committed")
        else {
            unreachable!()
        };
        // Assemble a certificate and verify it end-to-end.
        let cert = crate::certificate::CommitCertificate {
            cluster: rdb_common::ids::ClusterId(0),
            round: *seq,
            digest: batch.digest(),
            batch: batch.clone(),
            commits: commits.clone(),
        };
        let cfg = SystemConfig::geo(1, 4).unwrap();
        assert!(cert.verify(&cfg, &tc.cryptos[1]));
    }

    #[test]
    fn backup_ignores_preprepare_from_non_primary() {
        let mut tc = cluster();
        let batch = tc.signed_batch(0, 0, 1);
        let digest = batch.digest();
        let mut out = Outbox::new();
        // Replica 2 (not the view-0 primary) tries to propose.
        let ev = tc.cores[1].on_preprepare(tc.ids[2], tc.scope, 0, 1, batch, digest, &mut out);
        assert!(ev.is_empty());
        assert!(out.is_empty());
    }

    #[test]
    fn preprepare_outside_window_rejected() {
        let mut tc = cluster();
        let batch = tc.signed_batch(0, 0, 1);
        let digest = batch.digest();
        let window = tc.cores[1].cfg.window;
        let mut out = Outbox::new();
        let ev =
            tc.cores[1].on_preprepare(tc.ids[0], tc.scope, 0, window + 1, batch, digest, &mut out);
        assert!(ev.is_empty());
    }

    #[test]
    fn conflicting_preprepare_for_same_seq_ignored() {
        let mut tc = cluster();
        let a = tc.signed_batch(0, 0, 1);
        let b = tc.signed_batch(1, 0, 1);
        let mut out = Outbox::new();
        tc.cores[1].on_preprepare(tc.ids[0], tc.scope, 0, 1, a.clone(), a.digest(), &mut out);
        let before = out.len();
        let ev =
            tc.cores[1].on_preprepare(tc.ids[0], tc.scope, 0, 1, b.clone(), b.digest(), &mut out);
        assert!(ev.is_empty());
        assert_eq!(out.len(), before, "no prepare for the conflicting digest");
    }

    #[test]
    fn checkpoint_prunes_and_advances_watermark() {
        let mut tc = cluster();
        // Commit one instance.
        let batch = tc.signed_batch(0, 0, 1);
        let mut out = Outbox::new();
        tc.cores[0].enqueue_request(batch, &mut out);
        route_core_messages(&mut tc.cores, out);
        // Everyone records a checkpoint at seq 1.
        let state = Digest::of(b"state@1");
        let mut pending = Vec::new();
        for (i, core) in tc.cores.iter_mut().enumerate() {
            let mut out = Outbox::new();
            core.record_checkpoint(1, state, &mut out);
            pending.push((i, out));
        }
        let events = crate::testkit::route_batches(&mut tc.cores, pending, |_| true);
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, CoreEvent::CheckpointStable { seq: 1 })));
        for core in &tc.cores {
            assert_eq!(core.stable_seq(), 1);
            assert!(core.is_committed(1), "stable implies committed");
        }
    }

    #[test]
    fn view_change_elects_next_primary_and_preserves_prepared() {
        let mut tc = cluster();
        // Propose through the (about to fail) primary; let everything
        // commit first so the committed prefix must survive the change.
        let b1 = tc.signed_batch(0, 0, 1);
        let mut out = Outbox::new();
        tc.cores[0].enqueue_request(b1, &mut out);
        route_core_messages(&mut tc.cores, out);

        // Now replicas 1..4 time out and vote; replica 0 (old primary) is
        // silent.
        let mut pending = Vec::new();
        for (i, core) in tc.cores.iter_mut().enumerate().skip(1) {
            let mut out = Outbox::new();
            core.force_view_change(&mut out);
            pending.push((i, out));
        }
        let events = crate::testkit::route_batches(&mut tc.cores, pending, |t| t != 0);
        assert!(events
            .iter()
            .any(|(i, e)| *i != 0 && matches!(e, CoreEvent::ViewInstalled { view: 1 })));
        for core in &tc.cores[1..] {
            assert_eq!(core.view(), 1);
            assert!(!core.in_view_change());
            assert_eq!(core.primary(), tc.ids[1]);
        }
        // Committed instance survives.
        for core in &tc.cores[1..] {
            assert!(core.is_committed(1));
        }
    }

    #[test]
    fn new_primary_reproposes_prepared_but_uncommitted() {
        let mut tc = cluster();
        let b1 = tc.signed_batch(0, 0, 1);
        let digest = b1.digest();
        // Deliver a preprepare + quorum prepares to replicas 1..4 but no
        // commits: instances are prepared, not committed.
        let mut sink = Outbox::new();
        for i in 1..4 {
            tc.cores[i].on_preprepare(tc.ids[0], tc.scope, 0, 1, b1.clone(), digest, &mut sink);
        }
        for i in 1..4 {
            for j in 1..4 {
                tc.cores[i].on_prepare(tc.ids[j], tc.scope, 0, 1, digest, &mut sink);
            }
        }
        drop(sink); // the commit phase is "lost"
        for core in &tc.cores[1..] {
            assert!(!core.is_committed(1));
        }
        // View change without the old primary.
        let mut pending = Vec::new();
        for (i, core) in tc.cores.iter_mut().enumerate().skip(1) {
            let mut out = Outbox::new();
            core.force_view_change(&mut out);
            pending.push((i, out));
        }
        let events = crate::testkit::route_batches(&mut tc.cores, pending, |t| t != 0);
        // The re-proposal must commit in the new view among 1..4 (n - f =
        // 3 = the three live replicas).
        let committed: Vec<_> = events
            .iter()
            .filter(|(i, e)| {
                *i != 0
                    && matches!(e, CoreEvent::Committed { seq: 1, batch, .. } if batch.digest() == digest)
            })
            .collect();
        assert_eq!(committed.len(), 3, "prepared instance commits in view 1");
    }
}
