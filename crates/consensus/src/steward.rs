//! Steward — hierarchical wide-area BFT (Amir et al.), as characterized
//! by the paper (§1.1, §3):
//!
//! * "groups replicas into clusters, similar to GeoBFT. Different from
//!   GeoBFT, Steward designates one of these clusters as the *primary
//!   cluster*, which coordinates all operations";
//! * threshold signatures are omitted, as in the paper's implementation:
//!   aggregated messages carry `n - f` individual signatures instead;
//! * no view-change support — the paper itself excludes Steward from the
//!   primary-failure experiment because "it does not provide a
//!   readily-usable and complete view-change implementation".
//!
//! Normal case per global sequence number `s`:
//!
//! 1. Clients submit to their local representative (replica 0 of their
//!    cluster), who forwards to the primary cluster.
//! 2. The primary cluster replicates the batch with PBFT (the shared
//!    engine, cluster scope) and produces a commit certificate.
//! 3. The primary-cluster primary sends `StewardProposal(s, cert)` to
//!    `f + 1` replicas of every other cluster; receivers relay it locally.
//! 4. Every replica sends a signed `StewardLocalAccept` to its local
//!    representative; the representative aggregates `n - f` of them into
//!    a `StewardAccept` (the stand-in for Steward's threshold-signed site
//!    message) and sends it to `f + 1` replicas of every other cluster —
//!    the `O(z²)` global message complexity of Table 2.
//! 5. A replica executes `s` once it holds the proposal and accepts from
//!    a majority of clusters, then answers its local clients.

use crate::api::{Outbox, ReplicaProtocol, TimerKind};
use crate::certificate::CommitCertificate;
use crate::config::ProtocolConfig;
use crate::crypto_ctx::CryptoCtx;
use crate::exec::execute_batch_with_results;
use crate::messages::{Message, Scope};
use crate::pbft_core::{CoreEvent, PbftCore};
use crate::types::{Decision, DecisionEntry, ReplyData, SignedBatch};
use rdb_common::ids::{ClientId, ClusterId, NodeId, ReplicaId};
use rdb_common::time::SimTime;
use rdb_crypto::digest::Digest;
use rdb_crypto::sign::Signature;
use rdb_store::KvStore;
use std::collections::{BTreeMap, HashMap, HashSet};

/// The cluster coordinating all operations (placed in Oregon by §4).
pub const PRIMARY_CLUSTER: ClusterId = ClusterId(0);

/// Signing payload of a local/cluster accept.
pub fn accept_payload(cluster: ClusterId, seq: u64, digest: &Digest) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 2 + 8 + 32);
    out.extend_from_slice(b"staccept");
    out.extend_from_slice(&cluster.0.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(digest.as_bytes());
    out
}

/// Per-sequence state.
#[derive(Default)]
struct StInst {
    cert: Option<CommitCertificate>,
    /// Relayed the proposal locally already.
    relayed: bool,
    /// Representative: collected local accept signatures.
    local_accepts: BTreeMap<ReplicaId, Signature>,
    /// Representative: aggregated accept already sent.
    accept_sent: bool,
    /// Own local accept sent to the representative.
    local_accept_sent: bool,
    /// Clusters whose aggregated accept this replica verified.
    cluster_accepts: HashSet<ClusterId>,
    /// Accepts relayed locally (dedupe per origin cluster).
    relayed_accepts: HashSet<ClusterId>,
}

/// A Steward replica.
pub struct StewardReplica {
    cfg: ProtocolConfig,
    id: ReplicaId,
    crypto: CryptoCtx,
    store: KvStore,
    my_cluster: ClusterId,
    /// PBFT engine; only primary-cluster members participate in it.
    core: Option<PbftCore>,
    insts: BTreeMap<u64, StInst>,
    exec_next: u64,
    executed_decisions: u64,
    reply_cache: HashMap<ClientId, ReplyData>,
}

impl StewardReplica {
    /// Build a replica.
    pub fn new(cfg: ProtocolConfig, id: ReplicaId, crypto: CryptoCtx, store: KvStore) -> Self {
        let my_cluster = id.cluster;
        let core = (my_cluster == PRIMARY_CLUSTER).then(|| {
            PbftCore::new(
                Scope::Cluster(PRIMARY_CLUSTER),
                cfg.clone(),
                id,
                crypto.clone(),
            )
        });
        StewardReplica {
            cfg,
            id,
            crypto,
            store,
            my_cluster,
            core,
            insts: BTreeMap::new(),
            exec_next: 1,
            executed_decisions: 0,
            reply_cache: HashMap::new(),
        }
    }

    fn is_representative(&self) -> bool {
        self.id.index == 0
    }

    fn representative(&self) -> ReplicaId {
        ReplicaId {
            cluster: self.my_cluster,
            index: 0,
        }
    }

    fn majority_clusters(&self) -> usize {
        self.cfg.system.z() / 2 + 1
    }

    /// Decisions executed.
    pub fn executed_decisions(&self) -> u64 {
        self.executed_decisions
    }

    /// Store digest (tests).
    pub fn state_digest(&self) -> Digest {
        self.store.state_digest()
    }

    // ------------------------------------------------------------------
    // Request routing
    // ------------------------------------------------------------------

    fn handle_request(&mut self, sb: SignedBatch, out: &mut Outbox) {
        if let Some(cached) = self.reply_cache.get(&sb.batch.client) {
            if cached.batch_seq == sb.batch.batch_seq {
                out.send(
                    sb.batch.client,
                    Message::Reply {
                        data: cached.clone(),
                        view: 0,
                    },
                );
                return;
            }
        }
        match &mut self.core {
            Some(core) => {
                if core.is_primary() {
                    core.enqueue_request(sb, out);
                } else {
                    let primary = core.primary();
                    core.track_forwarded(sb.clone(), out);
                    out.send(primary, Message::Forward(sb));
                }
            }
            None => {
                // Remote cluster: the representative relays to the primary
                // cluster's representative, other replicas relay to their
                // own representative first.
                if self.is_representative() {
                    out.send(
                        ReplicaId {
                            cluster: PRIMARY_CLUSTER,
                            index: 0,
                        },
                        Message::Forward(sb),
                    );
                } else {
                    out.send(self.representative(), Message::Forward(sb));
                }
            }
        }
    }

    fn process_core_events(&mut self, events: Vec<CoreEvent>, out: &mut Outbox) {
        for e in events {
            if let CoreEvent::Committed {
                seq,
                batch,
                commits,
            } = e
            {
                let cert = CommitCertificate {
                    cluster: PRIMARY_CLUSTER,
                    round: seq,
                    digest: batch.digest(),
                    batch,
                    commits,
                };
                // The primary-cluster primary disseminates the proposal to
                // f + 1 replicas of every other cluster.
                let is_primary = self.core.as_ref().is_some_and(|c| c.is_primary());
                if is_primary {
                    let fanout = self.cfg.system.weak_quorum();
                    let msg = Message::StewardProposal {
                        seq,
                        cert: cert.clone(),
                    };
                    for c in self.cfg.system.cluster_ids() {
                        if c == PRIMARY_CLUSTER {
                            continue;
                        }
                        let targets = (0..fanout as u16).map(|i| ReplicaId {
                            cluster: c,
                            index: i,
                        });
                        out.multicast(targets, &msg);
                    }
                }
                self.accept_proposal(seq, cert, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Proposal dissemination and accepts
    // ------------------------------------------------------------------

    fn handle_proposal(
        &mut self,
        from: NodeId,
        seq: u64,
        cert: CommitCertificate,
        out: &mut Outbox,
    ) {
        if cert.cluster != PRIMARY_CLUSTER || cert.round != seq {
            return;
        }
        if !cert.verify(&self.cfg.system, &self.crypto) {
            return;
        }
        // Relay the first externally-received copy within the cluster.
        let inst = self.insts.entry(seq).or_default();
        let need_relay = from.cluster() != self.my_cluster
            && !inst.relayed
            && self.my_cluster != PRIMARY_CLUSTER;
        if need_relay {
            inst.relayed = true;
            let peers: Vec<ReplicaId> = self
                .cfg
                .system
                .replicas_of(self.my_cluster)
                .filter(|r| *r != self.id)
                .collect();
            out.multicast(
                peers,
                &Message::StewardProposal {
                    seq,
                    cert: cert.clone(),
                },
            );
        }
        self.accept_proposal(seq, cert, out);
    }

    fn accept_proposal(&mut self, seq: u64, cert: CommitCertificate, out: &mut Outbox) {
        let digest = cert.digest;
        let inst = self.insts.entry(seq).or_default();
        if inst.cert.is_none() {
            inst.cert = Some(cert);
        }
        if !inst.local_accept_sent {
            inst.local_accept_sent = true;
            let sig = self
                .crypto
                .sign(&accept_payload(self.my_cluster, seq, &digest));
            out.send(
                self.representative(),
                Message::StewardLocalAccept {
                    seq,
                    digest,
                    replica: self.id,
                    sig,
                },
            );
        }
        self.try_execute(out);
    }

    fn handle_local_accept(
        &mut self,
        from: ReplicaId,
        seq: u64,
        digest: Digest,
        sig: Signature,
        out: &mut Outbox,
    ) {
        if !self.is_representative() || from.cluster != self.my_cluster {
            return;
        }
        if self.crypto.checks_signatures() {
            let Some(pk) = self.crypto.verifier().public_key_of(from.into()) else {
                return;
            };
            if !self
                .crypto
                .verify(&pk, &accept_payload(self.my_cluster, seq, &digest), &sig)
            {
                return;
            }
        }
        let quorum = self.cfg.system.quorum();
        let fanout = self.cfg.system.weak_quorum();
        let my_cluster = self.my_cluster;
        let inst = self.insts.entry(seq).or_default();
        // Only collect accepts matching the certified digest (when known).
        if let Some(cert) = &inst.cert {
            if cert.digest != digest {
                return;
            }
        }
        inst.local_accepts.insert(from, sig);
        if inst.local_accepts.len() >= quorum && !inst.accept_sent {
            inst.accept_sent = true;
            let sigs: Vec<(ReplicaId, Signature)> = inst
                .local_accepts
                .iter()
                .take(quorum)
                .map(|(r, s)| (*r, *s))
                .collect();
            let msg = Message::StewardAccept {
                seq,
                cluster: my_cluster,
                digest,
                sigs,
            };
            // To every other cluster (f + 1 fanout) and locally.
            for c in self.cfg.system.cluster_ids() {
                if c == my_cluster {
                    continue;
                }
                let targets = (0..fanout as u16).map(|i| ReplicaId {
                    cluster: c,
                    index: i,
                });
                out.multicast(targets, &msg);
            }
            let peers: Vec<ReplicaId> = self
                .cfg
                .system
                .replicas_of(my_cluster)
                .filter(|r| r.index != 0)
                .collect();
            out.multicast(peers, &msg);
            // The representative's own bookkeeping.
            self.record_cluster_accept(seq, my_cluster, out);
        }
    }

    fn handle_cluster_accept(
        &mut self,
        from: NodeId,
        seq: u64,
        cluster: ClusterId,
        digest: Digest,
        sigs: &[(ReplicaId, Signature)],
        out: &mut Outbox,
    ) {
        if cluster.as_usize() >= self.cfg.system.z() {
            return;
        }
        if sigs.len() < self.cfg.system.quorum() {
            return;
        }
        let mut seen = HashSet::with_capacity(sigs.len());
        for (r, _) in sigs {
            if r.cluster != cluster || !seen.insert(*r) {
                return;
            }
        }
        if self.crypto.checks_signatures() {
            let payload = accept_payload(cluster, seq, &digest);
            for (r, sig) in sigs {
                let Some(pk) = self.crypto.verifier().public_key_of((*r).into()) else {
                    return;
                };
                if !self.crypto.verify(&pk, &payload, sig) {
                    return;
                }
            }
        }
        // Relay externally-received accepts locally, once per cluster.
        let inst = self.insts.entry(seq).or_default();
        if from.cluster() != self.my_cluster && inst.relayed_accepts.insert(cluster) {
            let peers: Vec<ReplicaId> = self
                .cfg
                .system
                .replicas_of(self.my_cluster)
                .filter(|r| *r != self.id)
                .collect();
            out.multicast(
                peers,
                &Message::StewardAccept {
                    seq,
                    cluster,
                    digest,
                    sigs: sigs.to_vec(),
                },
            );
        }
        self.record_cluster_accept(seq, cluster, out);
    }

    fn record_cluster_accept(&mut self, seq: u64, cluster: ClusterId, out: &mut Outbox) {
        let inst = self.insts.entry(seq).or_default();
        inst.cluster_accepts.insert(cluster);
        self.try_execute(out);
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn try_execute(&mut self, out: &mut Outbox) {
        loop {
            let seq = self.exec_next;
            let majority = self.majority_clusters();
            let ready = self
                .insts
                .get(&seq)
                .is_some_and(|i| i.cert.is_some() && i.cluster_accepts.len() >= majority);
            if !ready {
                break;
            }
            let inst = self.insts.remove(&seq).expect("present");
            let cert = inst.cert.expect("checked");
            self.exec_next += 1;
            self.executed_decisions += 1;
            let (result, results) =
                execute_batch_with_results(&mut self.store, self.cfg.exec_mode, &cert.batch);
            let client = cert.batch.batch.client;
            // Replicas of the client's own cluster reply.
            if client.cluster == self.my_cluster && !cert.batch.is_noop() {
                let data = ReplyData {
                    client,
                    batch_seq: cert.batch.batch.batch_seq,
                    seq,
                    // Global sequence numbers execute strictly in order,
                    // one block each.
                    block_height: self.executed_decisions,
                    result_digest: result,
                    results,
                    txns: cert.batch.batch.len() as u32,
                };
                self.reply_cache.insert(client, data.clone());
                out.send(client, Message::Reply { data, view: 0 });
            }
            out.decided(Decision {
                seq,
                entries: vec![DecisionEntry {
                    origin: Some(PRIMARY_CLUSTER),
                    batch: cert.batch,
                }],
                state_digest: self.store.state_digest(),
            });
            // Checkpoint the primary-cluster engine periodically.
            if self
                .executed_decisions
                .is_multiple_of(self.cfg.checkpoint_interval)
            {
                let state = self.store.state_digest();
                if let Some(core) = &mut self.core {
                    core.record_checkpoint(seq, state, out);
                }
            }
        }
    }
}

impl ReplicaProtocol for StewardReplica {
    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _now: SimTime, _out: &mut Outbox) {}

    fn on_message(&mut self, _now: SimTime, from: NodeId, msg: Message, out: &mut Outbox) {
        match msg {
            Message::Request(sb) | Message::Forward(sb) => self.handle_request(sb, out),
            Message::StewardProposal { seq, cert } => self.handle_proposal(from, seq, cert, out),
            Message::StewardLocalAccept {
                seq,
                digest,
                replica,
                sig,
            } => {
                if let NodeId::Replica(from) = from {
                    if from == replica {
                        self.handle_local_accept(from, seq, digest, sig, out);
                    }
                }
            }
            Message::StewardAccept {
                seq,
                cluster,
                digest,
                sigs,
            } => self.handle_cluster_accept(from, seq, cluster, digest, &sigs, out),
            core_msg => {
                let NodeId::Replica(from) = from else { return };
                if from.cluster != PRIMARY_CLUSTER {
                    return;
                }
                if let Some(core) = &mut self.core {
                    let events = core.handle_message(from, core_msg, out);
                    self.process_core_events(events, out);
                }
            }
        }
    }

    fn on_timer(&mut self, _now: SimTime, timer: TimerKind, out: &mut Outbox) {
        if timer == TimerKind::Progress {
            if let Some(core) = &mut self.core {
                core.on_progress_timeout(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Action;
    use crate::clients::synthetic_source;
    use crate::config::ExecMode;
    use crate::testkit::{RoutedDecisions, RoutedReplies};
    use rdb_common::config::SystemConfig;
    use rdb_crypto::sign::KeyStore;
    use std::collections::VecDeque;

    struct Net {
        replicas: Vec<StewardReplica>,
        n: usize,
    }

    impl Net {
        fn new(z: usize, n: usize) -> (Net, KeyStore, ProtocolConfig) {
            let system = SystemConfig::geo(z, n).unwrap();
            let mut cfg = ProtocolConfig::new(system.clone());
            cfg.exec_mode = ExecMode::Real;
            let ks = KeyStore::new(55);
            let replicas = system
                .all_replicas()
                .map(|r| {
                    let signer = ks.register(NodeId::Replica(r));
                    let crypto = CryptoCtx::new(signer, ks.verifier(), true);
                    StewardReplica::new(cfg.clone(), r, crypto, KvStore::with_ycsb_records(50))
                })
                .collect();
            (Net { replicas, n }, ks, cfg)
        }

        fn index(&self, r: ReplicaId) -> usize {
            r.cluster.as_usize() * self.n + r.index as usize
        }

        fn route(
            &mut self,
            initial: Vec<(NodeId, NodeId, Message)>,
        ) -> (RoutedReplies, RoutedDecisions) {
            let mut queue: VecDeque<(NodeId, NodeId, Message)> = initial.into();
            let mut replies = Vec::new();
            let mut decisions = Vec::new();
            let mut steps = 0;
            while let Some((from, to, msg)) = queue.pop_front() {
                steps += 1;
                assert!(steps < 3_000_000);
                let NodeId::Replica(rid) = to else {
                    if let Message::Reply { data, .. } = msg {
                        if let NodeId::Replica(s) = from {
                            replies.push((s, data));
                        }
                    }
                    continue;
                };
                let idx = self.index(rid);
                let mut out = Outbox::new();
                self.replicas[idx].on_message(SimTime::ZERO, from, msg, &mut out);
                for a in out.take() {
                    match a {
                        Action::Send { to: t, msg: m } => queue.push_back((to, t, m)),
                        Action::Decided(d) => decisions.push((rid, d)),
                        _ => {}
                    }
                }
            }
            (replies, decisions)
        }
    }

    fn signed(ks: &KeyStore, client: ClientId, seq: u64) -> SignedBatch {
        let signer = ks.register(NodeId::Client(client));
        let mut src = synthetic_source(client, 3, 30);
        let b = src(seq);
        let sig = signer.sign(b.digest().as_bytes());
        SignedBatch {
            pubkey: signer.public_key(),
            sig,
            batch: b,
        }
    }

    #[test]
    fn remote_client_request_reaches_primary_cluster_and_executes_globally() {
        let (mut net, ks, _cfg) = Net::new(3, 4);
        // A client in cluster 2 submits to its local representative.
        let client = ClientId::new(2, 0);
        let sb = signed(&ks, client, 0);
        let (replies, decisions) = net.route(vec![(
            NodeId::Client(client),
            ReplicaId::new(2, 0).into(),
            Message::Request(sb),
        )]);
        // All 12 replicas execute the decision.
        assert_eq!(decisions.len(), 12);
        // Replies come from the client's local cluster only.
        assert!(!replies.is_empty());
        assert!(replies.iter().all(|(r, _)| r.cluster == ClusterId(2)));
        // State identical everywhere.
        let s0 = net.replicas[0].state_digest();
        assert!(net.replicas.iter().all(|r| r.state_digest() == s0));
    }

    #[test]
    fn local_primary_cluster_client_works_too() {
        let (mut net, ks, _cfg) = Net::new(2, 4);
        let client = ClientId::new(0, 0);
        let sb = signed(&ks, client, 0);
        let (replies, decisions) = net.route(vec![(
            NodeId::Client(client),
            ReplicaId::new(0, 0).into(),
            Message::Request(sb),
        )]);
        assert_eq!(decisions.len(), 8);
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(|(r, _)| r.cluster == ClusterId(0)));
    }

    #[test]
    fn accept_with_insufficient_signatures_rejected() {
        let (mut net, _ks, _cfg) = Net::new(2, 4);
        let idx = net.index(ReplicaId::new(1, 1));
        let mut out = Outbox::new();
        net.replicas[idx].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 0).into(),
            Message::StewardAccept {
                seq: 1,
                cluster: ClusterId(0),
                digest: Digest::ZERO,
                sigs: vec![(ReplicaId::new(0, 0), Signature::default())],
            },
            &mut out,
        );
        assert!(out.take().is_empty());
    }

    #[test]
    fn forged_proposal_certificate_rejected() {
        let (mut net, ks, _cfg) = Net::new(2, 4);
        let client = ClientId::new(0, 5);
        let sb = signed(&ks, client, 0);
        let cert = CommitCertificate {
            cluster: PRIMARY_CLUSTER,
            round: 1,
            digest: sb.digest(),
            batch: sb,
            commits: (0..3u16)
                .map(|i| crate::certificate::CommitSig {
                    replica: ReplicaId::new(0, i),
                    sig: Signature([9u8; 64]),
                })
                .collect(),
        };
        let idx = net.index(ReplicaId::new(1, 0));
        let mut out = Outbox::new();
        net.replicas[idx].on_message(
            SimTime::ZERO,
            ReplicaId::new(0, 0).into(),
            Message::StewardProposal { seq: 1, cert },
            &mut out,
        );
        assert!(out.take().is_empty());
        assert_eq!(net.replicas[idx].executed_decisions(), 0);
    }

    #[test]
    fn multiple_sequential_requests_execute_in_order() {
        let (mut net, ks, _cfg) = Net::new(2, 4);
        let mut initial = Vec::new();
        for i in 0..4u32 {
            let client = ClientId::new(1, i);
            let sb = signed(&ks, client, 0);
            initial.push((
                NodeId::Client(client),
                ReplicaId::new(1, 0).into(),
                Message::Request(sb),
            ));
        }
        let (_, decisions) = net.route(initial);
        assert_eq!(decisions.len(), 8 * 4);
        for rid in net.replicas.iter().map(|r| r.id()).collect::<Vec<_>>() {
            let seqs: Vec<u64> = decisions
                .iter()
                .filter(|(r, _)| *r == rid)
                .map(|(_, d)| d.seq)
                .collect();
            assert_eq!(seqs, vec![1, 2, 3, 4]);
        }
    }
}
