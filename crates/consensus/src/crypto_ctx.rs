//! Per-node cryptographic context handed to protocol state machines.
//!
//! Bundles the node's unique [`Signer`], a shared [`Verifier`], and a
//! switch controlling whether signatures are actually checked.
//!
//! The switch exists because the discrete-event simulator *models* crypto
//! compute costs in virtual time (see `rdb-simnet::compute`); re-checking
//! every tag on the host CPU while simulating tens of thousands of
//! decisions would only slow the simulation down without changing its
//! outcome. Integration tests and the threaded fabric run with
//! `check_sigs = true`, so the verification paths are genuinely exercised.

use crate::types::SignedBatch;
use rdb_crypto::sign::{PublicKey, Signature, Signer, Verifier};
use std::sync::Arc;

/// Cryptographic capabilities of one node.
#[derive(Clone)]
pub struct CryptoCtx {
    signer: Arc<Signer>,
    verifier: Verifier,
    /// Produce real signatures when signing.
    sign_real: bool,
    /// Check signatures on inbound material. Independent from `sign_real`
    /// so a pipeline's ordering stage can *trust* a dedicated verifier
    /// stage (inbound checks off) while still signing its own votes.
    verify_inbound: bool,
}

impl CryptoCtx {
    /// Build a context. `check_sigs = false` turns `verify*` into
    /// constant-`true` (modeled verification) and signing into placeholder
    /// tags.
    pub fn new(signer: Signer, verifier: Verifier, check_sigs: bool) -> CryptoCtx {
        CryptoCtx {
            signer: Arc::new(signer),
            verifier,
            sign_real: check_sigs,
            verify_inbound: check_sigs,
        }
    }

    /// A context for a state machine running *behind* a verifier stage
    /// (paper Figure 9): inbound signature checks become constant-`true`
    /// because [`crate::stage::VerifiedMessage`] proved them already, while
    /// outbound signing stays real so peers can verify our votes.
    pub fn preverified(mut self) -> CryptoCtx {
        self.verify_inbound = false;
        self
    }

    /// Whether inbound verification is real or delegated/modeled.
    pub fn checks_signatures(&self) -> bool {
        self.verify_inbound
    }

    /// This node's public key.
    pub fn public_key(&self) -> PublicKey {
        self.signer.public_key()
    }

    /// Sign arbitrary bytes as this node. In modeled mode
    /// (`check_sigs = false`) this returns a placeholder tag: nobody will
    /// inspect it, and the *cost* of signing is charged in virtual time by
    /// the simulator instead of on the host CPU.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        if !self.sign_real {
            return Signature::default();
        }
        self.signer.sign(msg)
    }

    /// Verify a signature over raw bytes.
    pub fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        if !self.verify_inbound {
            return true;
        }
        self.verifier.verify(pk, msg, sig)
    }

    /// Verify many signatures over the *same* payload (certificates, QCs)
    /// in one batched pass over the key registry.
    pub fn verify_many(&self, msg: &[u8], pairs: &[(PublicKey, Signature)]) -> bool {
        if !self.verify_inbound {
            return true;
        }
        self.verifier.verify_many(msg, pairs)
    }

    /// Verify a client's signature on a batch. No-op batches are primary
    /// products and carry no client signature (§2.5); they validate
    /// through the surrounding commit certificate instead.
    pub fn verify_batch(&self, sb: &SignedBatch) -> bool {
        if sb.is_noop() {
            return true;
        }
        if !self.verify_inbound {
            return true;
        }
        self.verifier
            .verify(&sb.pubkey, sb.digest().as_bytes(), &sb.sig)
    }

    /// Access to the shared verifier (for certificate checks).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }
}

impl std::fmt::Debug for CryptoCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptoCtx")
            .field("sign_real", &self.sign_real)
            .field("verify_inbound", &self.verify_inbound)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientBatch, Transaction};
    use rdb_common::ids::{ClientId, ReplicaId};
    use rdb_crypto::sign::KeyStore;
    use rdb_store::Operation;

    fn make_ctx(check: bool) -> (CryptoCtx, KeyStore) {
        let ks = KeyStore::new(1);
        let signer = ks.register(ReplicaId::new(0, 0).into());
        (CryptoCtx::new(signer, ks.verifier(), check), ks)
    }

    fn signed_batch(ks: &KeyStore, valid: bool) -> SignedBatch {
        let client = ClientId::new(0, 0);
        let signer = ks.register(client.into());
        let batch = ClientBatch {
            client,
            batch_seq: 0,
            txns: vec![Transaction {
                client,
                seq: 0,
                op: Operation::NoOp,
            }],
        };
        let digest = batch.digest();
        let sig = if valid {
            signer.sign(digest.as_bytes())
        } else {
            signer.sign(b"wrong")
        };
        SignedBatch {
            batch,
            pubkey: signer.public_key(),
            sig,
        }
    }

    #[test]
    fn real_mode_checks() {
        let (ctx, ks) = make_ctx(true);
        let good = signed_batch(&ks, true);
        assert!(ctx.verify_batch(&good));
        let sig = ctx.sign(b"hello");
        assert!(ctx.verify(&ctx.public_key(), b"hello", &sig));
        assert!(!ctx.verify(&ctx.public_key(), b"other", &sig));
    }

    #[test]
    fn real_mode_rejects_bad_batch() {
        let (ctx, ks) = make_ctx(true);
        let bad = signed_batch(&ks, false);
        assert!(!ctx.verify_batch(&bad));
    }

    #[test]
    fn modeled_mode_accepts_everything() {
        let (ctx, ks) = make_ctx(false);
        let bad = signed_batch(&ks, false);
        assert!(ctx.verify_batch(&bad));
        assert!(ctx.verify(&ctx.public_key(), b"m", &Signature::default()));
        assert!(!ctx.checks_signatures());
    }

    #[test]
    fn preverified_trusts_inbound_but_signs_real() {
        let (ctx, ks) = make_ctx(true);
        let pre = ctx.clone().preverified();
        // Inbound checks are delegated: even a bad batch passes.
        let bad = signed_batch(&ks, false);
        assert!(pre.verify_batch(&bad));
        assert!(!pre.checks_signatures());
        // Outbound signing stays real: the full ctx can verify it.
        let sig = pre.sign(b"vote");
        assert!(ctx.verify(&ctx.public_key(), b"vote", &sig));
        assert_ne!(sig, Signature::default());
    }

    #[test]
    fn verify_many_gates_on_inbound_mode() {
        let (ctx, _ks) = make_ctx(true);
        let bad = [(ctx.public_key(), Signature::default())];
        assert!(!ctx.verify_many(b"payload", &bad));
        assert!(ctx.clone().preverified().verify_many(b"payload", &bad));
    }

    #[test]
    fn noop_batches_skip_client_verification() {
        let (ctx, _ks) = make_ctx(true);
        let noop = SignedBatch::noop(rdb_common::ids::ClusterId(0), 3);
        assert!(ctx.verify_batch(&noop));
    }
}
