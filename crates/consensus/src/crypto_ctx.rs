//! Per-node cryptographic context handed to protocol state machines.
//!
//! Bundles the node's unique [`Signer`], a shared [`Verifier`], and a
//! switch controlling whether signatures are actually checked.
//!
//! The switch exists because the discrete-event simulator *models* crypto
//! compute costs in virtual time (see `rdb-simnet::compute`); re-checking
//! every tag on the host CPU while simulating tens of thousands of
//! decisions would only slow the simulation down without changing its
//! outcome. Integration tests and the threaded fabric run with
//! `check_sigs = true`, so the verification paths are genuinely exercised.

use crate::types::SignedBatch;
use rdb_crypto::sign::{PublicKey, Signature, Signer, Verifier};
use std::sync::Arc;

/// Cryptographic capabilities of one node.
#[derive(Clone)]
pub struct CryptoCtx {
    signer: Arc<Signer>,
    verifier: Verifier,
    check_sigs: bool,
}

impl CryptoCtx {
    /// Build a context. `check_sigs = false` turns `verify*` into
    /// constant-`true` (modeled verification).
    pub fn new(signer: Signer, verifier: Verifier, check_sigs: bool) -> CryptoCtx {
        CryptoCtx {
            signer: Arc::new(signer),
            verifier,
            check_sigs,
        }
    }

    /// Whether verification is real or modeled.
    pub fn checks_signatures(&self) -> bool {
        self.check_sigs
    }

    /// This node's public key.
    pub fn public_key(&self) -> PublicKey {
        self.signer.public_key()
    }

    /// Sign arbitrary bytes as this node. In modeled mode
    /// (`check_sigs = false`) this returns a placeholder tag: nobody will
    /// inspect it, and the *cost* of signing is charged in virtual time by
    /// the simulator instead of on the host CPU.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        if !self.check_sigs {
            return Signature::default();
        }
        self.signer.sign(msg)
    }

    /// Verify a signature over raw bytes.
    pub fn verify(&self, pk: &PublicKey, msg: &[u8], sig: &Signature) -> bool {
        if !self.check_sigs {
            return true;
        }
        self.verifier.verify(pk, msg, sig)
    }

    /// Verify a client's signature on a batch. No-op batches are primary
    /// products and carry no client signature (§2.5); they validate
    /// through the surrounding commit certificate instead.
    pub fn verify_batch(&self, sb: &SignedBatch) -> bool {
        if sb.is_noop() {
            return true;
        }
        if !self.check_sigs {
            return true;
        }
        self.verifier
            .verify(&sb.pubkey, sb.digest().as_bytes(), &sb.sig)
    }

    /// Access to the shared verifier (for certificate checks).
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }
}

impl std::fmt::Debug for CryptoCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptoCtx")
            .field("check_sigs", &self.check_sigs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClientBatch, Transaction};
    use rdb_common::ids::{ClientId, ReplicaId};
    use rdb_crypto::sign::KeyStore;
    use rdb_store::Operation;

    fn make_ctx(check: bool) -> (CryptoCtx, KeyStore) {
        let ks = KeyStore::new(1);
        let signer = ks.register(ReplicaId::new(0, 0).into());
        (CryptoCtx::new(signer, ks.verifier(), check), ks)
    }

    fn signed_batch(ks: &KeyStore, valid: bool) -> SignedBatch {
        let client = ClientId::new(0, 0);
        let signer = ks.register(client.into());
        let batch = ClientBatch {
            client,
            batch_seq: 0,
            txns: vec![Transaction {
                client,
                seq: 0,
                op: Operation::NoOp,
            }],
        };
        let digest = batch.digest();
        let sig = if valid {
            signer.sign(digest.as_bytes())
        } else {
            signer.sign(b"wrong")
        };
        SignedBatch {
            batch,
            pubkey: signer.public_key(),
            sig,
        }
    }

    #[test]
    fn real_mode_checks() {
        let (ctx, ks) = make_ctx(true);
        let good = signed_batch(&ks, true);
        assert!(ctx.verify_batch(&good));
        let sig = ctx.sign(b"hello");
        assert!(ctx.verify(&ctx.public_key(), b"hello", &sig));
        assert!(!ctx.verify(&ctx.public_key(), b"other", &sig));
    }

    #[test]
    fn real_mode_rejects_bad_batch() {
        let (ctx, ks) = make_ctx(true);
        let bad = signed_batch(&ks, false);
        assert!(!ctx.verify_batch(&bad));
    }

    #[test]
    fn modeled_mode_accepts_everything() {
        let (ctx, ks) = make_ctx(false);
        let bad = signed_batch(&ks, false);
        assert!(ctx.verify_batch(&bad));
        assert!(ctx.verify(&ctx.public_key(), b"m", &Signature::default()));
        assert!(!ctx.checks_signatures());
    }

    #[test]
    fn noop_batches_skip_client_verification() {
        let (ctx, _ks) = make_ctx(true);
        let noop = SignedBatch::noop(rdb_common::ids::ClusterId(0), 3);
        assert!(ctx.verify_batch(&noop));
    }
}
