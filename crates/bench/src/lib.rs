//! Shared infrastructure for the reproduction binaries: argument
//! handling, result tables, and JSON report emission.
//!
//! Every `repro_*` binary regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the experiment index) and prints:
//!
//! 1. a human-readable table mirroring the paper's rows/series, and
//! 2. one JSON line per data point (for EXPERIMENTS.md regeneration),
//!    when `--json <path>` is given.

use rdb_simnet::RunMetrics;
use std::fs::File;
use std::io::Write as _;

/// Command-line options shared by the repro binaries.
#[derive(Debug, Clone)]
pub struct ReproArgs {
    /// Shrink windows and client counts for a fast smoke run.
    pub quick: bool,
    /// Optional JSON-lines output path.
    pub json: Option<String>,
}

impl ReproArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> ReproArgs {
        let mut args = ReproArgs {
            quick: false,
            json: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--json" => args.json = it.next(),
                "--help" | "-h" => {
                    eprintln!("options: --quick  --json <path>");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        args
    }
}

/// Collects data points and renders them.
pub struct Report {
    title: String,
    points: Vec<RunMetrics>,
}

impl Report {
    /// Start a report.
    pub fn new(title: impl Into<String>) -> Report {
        let title = title.into();
        println!("==== {title} ====");
        Report {
            title,
            points: Vec::new(),
        }
    }

    /// Add (and echo) one data point.
    pub fn push(&mut self, m: RunMetrics) {
        println!("{}", m.summary());
        self.points.push(m);
    }

    /// The collected points.
    pub fn points(&self) -> &[RunMetrics] {
        &self.points
    }

    /// Render a `protocol x x-axis` metric matrix like the paper's
    /// figures. `xs` labels columns; `key` extracts the column value of a
    /// point; `value` extracts the plotted metric.
    pub fn matrix(
        &self,
        x_label: &str,
        xs: &[String],
        key: impl Fn(&RunMetrics) -> String,
        value: impl Fn(&RunMetrics) -> f64,
        unit: &str,
    ) {
        println!();
        println!("{} — {} by {}", self.title, unit, x_label);
        print!("{:<10}", "protocol");
        for x in xs {
            print!("{x:>12}");
        }
        println!();
        let mut protocols: Vec<String> = Vec::new();
        for p in &self.points {
            if !protocols.contains(&p.protocol) {
                protocols.push(p.protocol.clone());
            }
        }
        for proto in protocols {
            print!("{proto:<10}");
            for x in xs {
                let v = self
                    .points
                    .iter()
                    .find(|p| p.protocol == proto && key(p) == *x)
                    .map(&value);
                match v {
                    Some(v) if unit.contains("latency") => print!("{v:>12.3}"),
                    Some(v) => print!("{v:>12.0}"),
                    None => print!("{:>12}", "-"),
                }
            }
            println!();
        }
    }

    /// Write JSON lines if requested.
    pub fn write_json(&self, args: &ReproArgs) {
        if let Some(path) = &args.json {
            let mut f = File::create(path).expect("create json output");
            for p in &self.points {
                let line = serde_json::to_string(p).expect("serialize point");
                writeln!(f, "{line}").expect("write json line");
            }
            println!("(wrote {} data points to {path})", self.points.len());
        }
    }
}

/// Speed-ratio helper for the "who wins by what factor" checks.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}
