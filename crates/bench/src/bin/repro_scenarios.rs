//! Scenario-suite runner: SmallBank transfers, multi-key token RMWs, a
//! healing network partition, and one equivocating primary per protocol
//! (PBFT, GeoBFT, Zyzzyva, HotStuff).
//!
//! `--quick` runs the deterministic simulator only: two invocations of
//! `repro_scenarios --quick --json <path>` must produce byte-identical
//! output (the CI `scenarios` job diffs exactly that). Without `--quick`
//! every scenario *additionally* runs on the threaded fabric and the
//! cross-runtime assertions fire: byte-identical committed ledgers for
//! the fault-free scenarios (at 1 and 4 execution lanes), honest-replica
//! agreement plus a progress floor for the fault scripts.

use rdb_bench::ReproArgs;
use rdb_scenario::{run_all, Mode};
use std::fs::File;
use std::io::Write as _;

fn main() {
    let args = ReproArgs::parse();
    let mode = if args.quick { Mode::Quick } else { Mode::Full };
    println!("==== Scenario suite: transaction programs under faults ====");
    let outcomes = run_all(mode);

    println!(
        "{:<26} {:>9} {:>8} {:>9} {:>7} {:>8}  state digest",
        "scenario", "protocol", "blocks", "programs", "aborts", "abort%"
    );
    for o in &outcomes {
        let pct = if o.programs > 0 {
            100.0 * o.aborts as f64 / o.programs as f64
        } else {
            0.0
        };
        println!(
            "{:<26} {:>9} {:>8} {:>9} {:>7} {:>7.1}%  {}..",
            o.scenario,
            o.protocol,
            o.blocks,
            o.programs,
            o.aborts,
            pct,
            &o.state_digest[..16.min(o.state_digest.len())]
        );
    }
    if mode == Mode::Full {
        println!("(fabric cross-runtime assertions passed for every scenario)");
    }

    if let Some(path) = &args.json {
        let mut f = File::create(path).expect("create json output");
        for o in &outcomes {
            let line = serde_json::to_string(o).expect("serialize outcome");
            writeln!(f, "{line}").expect("write json line");
        }
        println!("(wrote {} scenario outcomes to {path})", outcomes.len());
    }
}
