//! Table 2 reproduction: normal-case decision and communication metrics
//! of the five protocols.
//!
//! The paper states asymptotic message complexity per consensus decision
//! for a system of `z` clusters with `n` replicas each (`f` faulty per
//! cluster):
//!
//! | protocol  | decisions | local       | global   | centralized |
//! |-----------|-----------|-------------|----------|-------------|
//! | GeoBFT    | z         | O(2 z n^2)  | O(f z^2) | no          |
//! | Steward   | 1         | O(2 z n^2)  | O(z^2)   | yes         |
//! | Zyzzyva   | 1         | O(z n)      |          | yes         |
//! | Pbft      | 1         | O(2 (zn)^2) |          | yes         |
//! | HotStuff  | 1         | O(8 zn)     |          | partly      |
//!
//! This binary measures actual messages per decision in the simulator and
//! prints them next to the formula's value. GeoBFT rows are per *round*
//! (`z` decisions), matching the table's framing.

use rdb_bench::{Report, ReproArgs};
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn formula(kind: ProtocolKind, z: f64, n: f64, f: f64) -> (f64, Option<f64>) {
    match kind {
        ProtocolKind::GeoBft => (2.0 * z * n * n, Some(f * z * z)),
        ProtocolKind::Steward => (2.0 * z * n * n, Some(z * z)),
        ProtocolKind::Zyzzyva => (z * n, None),
        ProtocolKind::Pbft => (2.0 * (z * n) * (z * n), None),
        ProtocolKind::HotStuff => (8.0 * z * n, None),
    }
}

fn main() {
    let args = ReproArgs::parse();
    let (z, n) = (4usize, 4usize);
    let f = (n - 1) / 3;
    let mut report = Report::new(format!(
        "Table 2: normal-case communication per decision (z={z}, n={n}, f={f})"
    ));

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10}  centralized",
        "protocol", "decisions", "meas.local", "meas.global", "formula", "f.global"
    );
    for kind in ProtocolKind::ALL {
        let mut s = Scenario::paper(kind, z, n).quick();
        s.logical_clients = 20_000;
        let m = s.run();
        let (local, global) = (m.msgs_local_per_decision, m.msgs_global_per_decision);
        let (f_total, f_global) = formula(kind, z as f64, n as f64, f as f64);
        let decisions = if kind == ProtocolKind::GeoBft {
            format!("{z} (round)")
        } else {
            "1".to_string()
        };
        let centralized = match kind {
            ProtocolKind::GeoBft => "no",
            ProtocolKind::HotStuff => "partly",
            _ => "yes",
        };
        println!(
            "{:<10} {:>10} {:>12.1} {:>12.1} {:>12.0} {:>10}  {}",
            kind.name(),
            decisions,
            local,
            global,
            f_total,
            f_global.map_or("-".to_string(), |v| format!("{v:.0}")),
            centralized,
        );
        report.push(m);
    }

    println!();
    println!("Notes: measured counts include client requests, replies and");
    println!("checkpoints, which the asymptotic formulas omit. The key check is");
    println!("GeoBFT's global column: (z-1)*z*(f+1) certificate messages per round");
    println!("= O(f z^2), the lowest global cost of any protocol, while only");
    println!("GeoBFT and Steward keep the quadratic term local.");
    report.write_json(&args);
}
