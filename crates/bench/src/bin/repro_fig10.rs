//! Figure 10 reproduction: throughput and latency as a function of the
//! number of clusters (regions), with `z * n = 60` replicas total.
//!
//! Paper setup (§4.1): 60 replicas evenly distributed over 1..6 regions
//! in the order Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney; YCSB
//! write-only, batch size 100, 160 k clients.
//!
//! Expected shape: GeoBFT is the only protocol that *gains* throughput
//! from added regions (decentralized parallel consensus, minimal global
//! communication); PBFT/Zyzzyva fall off sharply once WAN links join;
//! HotStuff declines mildly but pays 4-phase latency; Steward stays low.
//! GeoBFT outperforms PBFT by up to ~3.1x and HotStuff by up to ~1.3x.

use rdb_bench::{ratio, Report, ReproArgs};
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn main() {
    let args = ReproArgs::parse();
    let mut report = Report::new("Figure 10: throughput/latency vs number of clusters (zn = 60)");

    let zs: Vec<usize> = if args.quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 3, 4, 5, 6]
    };
    for kind in ProtocolKind::ALL {
        for &z in &zs {
            let n = 60 / z;
            let mut s = Scenario::paper(kind, z, n);
            if args.quick {
                s = s.quick();
                s.logical_clients = 40_000;
            }
            report.push(s.run());
        }
    }

    let xs: Vec<String> = zs.iter().map(|z| z.to_string()).collect();
    report.matrix(
        "clusters",
        &xs,
        |m| m.z.to_string(),
        |m| m.throughput_txn_s,
        "throughput (txn/s)",
    );
    report.matrix(
        "clusters",
        &xs,
        |m| m.z.to_string(),
        |m| m.avg_latency_s,
        "latency (s)",
    );

    // Headline factors at the largest deployment.
    let max_z = *zs.last().expect("non-empty");
    let get = |proto: &str| {
        report
            .points()
            .iter()
            .find(|m| m.protocol == proto && m.z == max_z)
            .map(|m| m.throughput_txn_s)
            .unwrap_or(0.0)
    };
    println!();
    println!(
        "at z = {max_z}: GeoBFT/Pbft = {:.2}x (paper: up to 3.1x), GeoBFT/HotStuff = {:.2}x (paper: up to 1.3x)",
        ratio(get("GeoBFT"), get("Pbft")),
        ratio(get("GeoBFT"), get("HotStuff")),
    );
    report.write_json(&args);
}
