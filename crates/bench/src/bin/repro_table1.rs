//! Table 1 reproduction: inter- and intra-region round-trip times and
//! bandwidths.
//!
//! The paper *measured* these on Google Cloud; we *configure* the
//! simulator with them (DESIGN.md substitution table). This binary
//! validates the network substrate: it prints the configured matrix in
//! the paper's format and then checks that the simulator's effective
//! one-way delay and per-flow transfer rate of every region pair match
//! the configuration.

use rdb_common::region::Region;
use rdb_common::time::SimDuration;
use rdb_simnet::topology::{Topology, TABLE1_BW_MBIT, TABLE1_RTT_MS};

fn main() {
    let regions = Region::PAPER_ORDER;
    let topo = Topology::paper(&regions);
    assert_eq!(TABLE1_RTT_MS.len(), regions.len(), "RTT matrix rows");
    assert_eq!(TABLE1_RTT_MS[0].len(), regions.len(), "RTT matrix columns");
    assert_eq!(TABLE1_BW_MBIT.len(), regions.len(), "bandwidth matrix rows");
    assert_eq!(
        TABLE1_BW_MBIT[0].len(),
        regions.len(),
        "bandwidth matrix columns"
    );

    println!("==== Table 1: ping round-trip times (ms) ====");
    print!("{:>10}", "");
    for r in &regions {
        print!("{:>9}", r.abbrev());
    }
    println!();
    for (i, r) in regions.iter().enumerate() {
        print!("{:>10}", r.to_string());
        for (j, rtt) in TABLE1_RTT_MS[i].iter().enumerate() {
            if j < i {
                print!("{:>9}", "");
            } else if i == j {
                print!("{:>9}", "<=1");
            } else {
                print!("{rtt:>9.0}");
            }
        }
        println!();
    }

    println!();
    println!("==== Table 1: bandwidth (Mbit/s) ====");
    print!("{:>10}", "");
    for r in &regions {
        print!("{:>9}", r.abbrev());
    }
    println!();
    for (i, r) in regions.iter().enumerate() {
        print!("{:>10}", r.to_string());
        for (j, bw) in TABLE1_BW_MBIT[i].iter().enumerate() {
            if j < i {
                print!("{:>9}", "");
            } else {
                print!("{bw:>9.0}");
            }
        }
        println!();
    }

    // Validate the simulator reproduces the configuration.
    println!();
    println!("==== simulator validation ====");
    let mut worst_lat_err: f64 = 0.0;
    let mut worst_bw_err: f64 = 0.0;
    for i in 0..regions.len() {
        for j in 0..regions.len() {
            if i == j {
                continue;
            }
            // One-way delay must be RTT/2.
            let lat = topo.latency(i, j).as_millis_f64();
            let expect = TABLE1_RTT_MS[i][j] / 2.0;
            worst_lat_err = worst_lat_err.max((lat - expect).abs());
            // Per-flow rate: serialize 1 MB and compare.
            let d = topo.pipe_ser_delay(i, j, 1_000_000);
            let measured_mbit = 8.0 / d.as_secs_f64();
            let cfg_mbit = TABLE1_BW_MBIT[i.min(j)][i.max(j)];
            worst_bw_err = worst_bw_err.max((measured_mbit - cfg_mbit).abs() / cfg_mbit);
        }
    }
    println!("max one-way latency error vs RTT/2:        {worst_lat_err:.6} ms");
    println!(
        "max per-flow bandwidth relative error:     {:.6}%",
        worst_bw_err * 100.0
    );
    println!(
        "latency ratio global/local (paper: 33x-270x): {:.0}x .. {:.0}x",
        TABLE1_RTT_MS[0][1] / 1.0,
        TABLE1_RTT_MS[3][5] / 1.0
    );
    assert!(worst_lat_err < 1e-3, "latency model mismatch");
    assert!(worst_bw_err < 1e-3, "bandwidth model mismatch");

    let one_way = SimDuration::from_micros(80_500);
    println!("Oregon -> Sydney one-way (configured): {one_way} (Table 1: RTT 161 ms / 2)");
    println!("network substrate matches Table 1. OK");
}
