//! Ablation (E9 in DESIGN.md): GeoBFT's inter-cluster sharing fanout.
//!
//! §2.3 of the paper argues that sending a *single* message per remote
//! cluster is not enough (Example 2.4: the receivers cannot distinguish a
//! Byzantine sending primary from a Byzantine receiving relay), while
//! `f + 1` messages guarantee at least one non-faulty receiver. This
//! ablation measures the cost/benefit directly:
//!
//! * with fanout `f + 1` (the protocol), a crashed relay costs nothing:
//!   another receiver performs the local phase;
//! * with fanout 1, the same crash stalls rounds until the remote
//!   view-change machinery (or DRVC-based recovery) kicks in — visible as
//!   a throughput collapse;
//! * with fanout `n`, reliability is identical to `f + 1` but the WAN
//!   bytes per round grow by `n / (f + 1)`.

use rdb_bench::{Report, ReproArgs};
use rdb_common::ids::ReplicaId;
use rdb_common::time::SimTime;
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::{FaultSpec, Scenario};

fn scenario(fanout: Option<usize>, drop_first_receiver: bool, quick: bool) -> Scenario {
    let mut s = Scenario::paper(ProtocolKind::GeoBft, 4, 7);
    if quick {
        s = s.quick();
        s.logical_clients = 40_000;
    }
    s.cfg.fanout_override = fanout;
    if drop_first_receiver {
        // Every link from a remote primary to a cluster's receiver 0 goes
        // dark: with fanout 1 that is the *only* path certificates take
        // (Example 2.4: receivers cannot tell which side failed); with
        // fanout f+1, receivers 1 and 2 still carry the local phase.
        let z = 4u16;
        s.faults = (0..z)
            .flat_map(|src| {
                (0..z).filter(move |dst| *dst != src).map(move |dst| {
                    FaultSpec::drop_link(
                        ReplicaId::new(src, 0),
                        ReplicaId::new(dst, 0),
                        SimTime::ZERO,
                    )
                })
            })
            .collect();
    }
    s
}

fn main() {
    let args = ReproArgs::parse();
    let mut report = Report::new("Ablation: GeoBFT global-sharing fanout (z = 4, n = 7, f = 2)");

    let configs: Vec<(&str, Option<usize>, bool)> = vec![
        ("fanout f+1 (protocol)", None, false),
        ("fanout 1", Some(1), false),
        ("fanout n", Some(7), false),
        ("fanout f+1 + dead relay links", None, true),
        ("fanout 1 + dead relay links", Some(1), true),
    ];

    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "configuration", "txn/s", "latency(s)", "WAN MB/s"
    );
    for (label, fanout, crash) in configs {
        let m = scenario(fanout, crash, args.quick).run();
        println!(
            "{:<28} {:>12.0} {:>12.3} {:>14.2}",
            label, m.throughput_txn_s, m.avg_latency_s, m.global_mb_per_s
        );
        report.push(m);
    }

    println!();
    println!("Expected: fanout 1 is cheapest when nothing fails (fewer certificate");
    println!("copies to verify, least WAN traffic) but has zero slack — when its");
    println!("single delivery path per cluster dies, rounds stop; fanout f+1 rides");
    println!("through the same link failures; fanout n buys nothing over f+1 while");
    println!("multiplying WAN bytes and verification work — exactly the paper's");
    println!("argument for the optimistic f+1 protocol (Figure 5, Prop. 2.5).");
    report.write_json(&args);
}
