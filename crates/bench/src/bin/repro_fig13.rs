//! Figure 13 reproduction: throughput as a function of the batch size;
//! z = 4 regions, n = 7 replicas per cluster.
//!
//! Paper setup (§4.4): batch size in {10, 50, 100, 200, 300}, 160 k
//! clients.
//!
//! Expected shape: the single-primary protocols (Pbft, Zyzzyva, Steward)
//! plateau early — "bottlenecked by the bandwidth of the single primary" —
//! while GeoBFT (primaries in each region) and HotStuff (rotating
//! primaries) keep scaling with the batch size. GeoBFT reaches up to 6x
//! Pbft and up to 1.6x HotStuff.

use rdb_bench::{ratio, Report, ReproArgs};
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn main() {
    let args = ReproArgs::parse();
    let mut report = Report::new("Figure 13: throughput vs batch size (z = 4, n = 7)");

    let batches: Vec<usize> = if args.quick {
        vec![10, 100, 300]
    } else {
        vec![10, 50, 100, 200, 300]
    };
    for kind in ProtocolKind::ALL {
        for &b in &batches {
            let mut s = Scenario::paper(kind, 4, 7).with_batch_size(b);
            if args.quick {
                s = s.quick();
                s.logical_clients = 40_000;
            }
            report.push(s.run());
        }
    }

    let xs: Vec<String> = batches.iter().map(|b| b.to_string()).collect();
    report.matrix(
        "batch size",
        &xs,
        |m| m.batch.to_string(),
        |m| m.throughput_txn_s,
        "throughput (txn/s)",
    );

    let max_b = *batches.last().expect("non-empty");
    let get = |proto: &str| {
        report
            .points()
            .iter()
            .find(|m| m.protocol == proto && m.batch == max_b)
            .map(|m| m.throughput_txn_s)
            .unwrap_or(0.0)
    };
    println!();
    println!(
        "at batch {max_b}: GeoBFT/Pbft = {:.2}x (paper: up to 6.0x), GeoBFT/HotStuff = {:.2}x (paper: up to 1.6x)",
        ratio(get("GeoBFT"), get("Pbft")),
        ratio(get("GeoBFT"), get("HotStuff")),
    );
    report.write_json(&args);
}
