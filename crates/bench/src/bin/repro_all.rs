//! Run every reproduction in sequence (tables, figures, ablation).
//!
//! `cargo run --release -p rdb-bench --bin repro_all [-- --quick]`
//!
//! Pass `--quick` for a fast smoke pass (fewer data points, shorter
//! simulation windows).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bins = [
        "repro_table1",
        "repro_table2",
        "repro_fig10",
        "repro_fig11",
        "repro_fig12",
        "repro_fig13",
        "ablation_fanout",
        "repro_scenarios",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!();
        println!("########################################################");
        println!("# {bin}");
        println!("########################################################");
        let mut cmd = Command::new(dir.join(bin));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e} (build with --release first)"));
        assert!(status.success(), "{bin} failed");
    }
    println!();
    println!("all reproductions complete.");
}
