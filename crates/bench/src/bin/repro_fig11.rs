//! Figure 11 reproduction: throughput and latency as a function of the
//! number of replicas per cluster, with `z = 4` regions (Oregon, Iowa,
//! Montreal, Belgium).
//!
//! Paper setup (§4.2): n in {4, 7, 10, 12, 15}; batch size 100.
//!
//! Expected shape: PBFT/Zyzzyva/Steward barely react to n (their
//! bottleneck is the primary's WAN communication); HotStuff loses
//! throughput and especially latency as n grows (quorum certificates grow
//! with N); GeoBFT degrades mildly (certificate size and sharing fanout
//! are functions of f) but stays on top — still ~2.9x PBFT and ~1.2x
//! HotStuff at n = 15.

use rdb_bench::{ratio, Report, ReproArgs};
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn main() {
    let args = ReproArgs::parse();
    let mut report = Report::new("Figure 11: throughput/latency vs replicas per cluster (z = 4)");

    let ns: Vec<usize> = if args.quick {
        vec![4, 7]
    } else {
        vec![4, 7, 10, 12, 15]
    };
    for kind in ProtocolKind::ALL {
        for &n in &ns {
            let mut s = Scenario::paper(kind, 4, n);
            if args.quick {
                s = s.quick();
                s.logical_clients = 40_000;
            }
            report.push(s.run());
        }
    }

    let xs: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    report.matrix(
        "replicas per cluster",
        &xs,
        |m| m.n.to_string(),
        |m| m.throughput_txn_s,
        "throughput (txn/s)",
    );
    report.matrix(
        "replicas per cluster",
        &xs,
        |m| m.n.to_string(),
        |m| m.avg_latency_s,
        "latency (s)",
    );

    let max_n = *ns.last().expect("non-empty");
    let get = |proto: &str| {
        report
            .points()
            .iter()
            .find(|m| m.protocol == proto && m.n == max_n)
            .map(|m| m.throughput_txn_s)
            .unwrap_or(0.0)
    };
    println!();
    println!(
        "at n = {max_n}: GeoBFT/Pbft = {:.2}x (paper: 2.9x), GeoBFT/HotStuff = {:.2}x (paper: 1.2x)",
        ratio(get("GeoBFT"), get("Pbft")),
        ratio(get("GeoBFT"), get("HotStuff")),
    );
    report.write_json(&args);
}
