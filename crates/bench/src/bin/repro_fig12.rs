//! Figure 12 reproduction: throughput under failures, `z = 4` regions,
//! n in {4, 7, 10, 12} replicas per cluster.
//!
//! Three scenarios (§4.3):
//!
//! * **left** — a single non-primary replica failure: small impact on all
//!   protocols except Zyzzyva, whose throughput plummets (the fast path
//!   requires all `n` responses; clients fall back to their conservative
//!   timeout + commit phase);
//! * **middle** — `f` non-primary failures in *every* cluster (the worst
//!   case GeoBFT/Steward are designed for): moderate impact — quorums now
//!   need the slowest remaining replicas;
//! * **right** — a single primary failure (GeoBFT's Oregon cluster
//!   primary / PBFT's primary), forcing a view change; checkpoints every
//!   600 transactions, failure after 900 transactions. The paper runs
//!   this for GeoBFT and PBFT only (Zyzzyva cannot survive it, HotStuff
//!   has no fixed primary, Steward lacks a view-change implementation).

use rdb_bench::{Report, ReproArgs};
use rdb_common::ids::ReplicaId;
use rdb_common::time::SimDuration;
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::{FaultSpec, Scenario};

fn base(kind: ProtocolKind, n: usize, quick: bool) -> Scenario {
    let mut s = Scenario::paper(kind, 4, n);
    if quick {
        s = s.quick();
        s.logical_clients = 40_000;
    }
    // Failure runs use faster detection and a longer warm-up so the
    // one-off failure-discovery phase (timer per dead leader) resolves
    // before measurement; the paper's 180 s runs amortize it instead.
    s.cfg.progress_timeout = SimDuration::from_millis(300);
    s.warmup = if quick {
        SimDuration::from_millis(3_000)
    } else {
        SimDuration::from_millis(5_000)
    };
    s
}

fn main() {
    let args = ReproArgs::parse();
    let ns: Vec<usize> = if args.quick {
        vec![4, 7]
    } else {
        vec![4, 7, 10, 12]
    };
    let xs: Vec<String> = ns.iter().map(|n| n.to_string()).collect();

    // ---------------- left: one non-primary failure --------------------
    let mut left = Report::new("Figure 12 (left): one non-primary replica failure");
    for kind in ProtocolKind::ALL {
        for &n in &ns {
            let mut s = base(kind, n, args.quick);
            // Crash the last replica of cluster 0 from the start: never a
            // primary/representative under any protocol here.
            s.faults = vec![FaultSpec::crash_at_secs(
                ReplicaId::new(0, (n - 1) as u16),
                0.0,
            )];
            left.push(s.run());
        }
    }
    left.matrix(
        "replicas per cluster",
        &xs,
        |m| m.n.to_string(),
        |m| m.throughput_txn_s,
        "throughput (txn/s), one failure",
    );

    // ---------------- middle: f failures per cluster --------------------
    let mut middle = Report::new("Figure 12 (middle): f non-primary failures in every cluster");
    for kind in ProtocolKind::ALL {
        for &n in &ns {
            let f = (n - 1) / 3;
            let mut s = base(kind, n, args.quick);
            s.faults = (0..4u16)
                .flat_map(|c| {
                    (0..f as u16).map(move |i| {
                        FaultSpec::crash_at_secs(ReplicaId::new(c, (n as u16) - 1 - i), 0.0)
                    })
                })
                .collect();
            middle.push(s.run());
        }
    }
    middle.matrix(
        "replicas per cluster",
        &xs,
        |m| m.n.to_string(),
        |m| m.throughput_txn_s,
        "throughput (txn/s), f failures per cluster",
    );

    // ---------------- right: single primary failure ---------------------
    let mut right = Report::new(
        "Figure 12 (right): single primary failure (GeoBFT: Oregon primary; Pbft: the primary)",
    );
    for kind in [ProtocolKind::GeoBft, ProtocolKind::Pbft] {
        for &n in &ns {
            let mut s = base(kind, n, args.quick);
            // Faster detection so the view change resolves within the
            // window (the paper's runs are 180 s; ours are seconds).
            s.cfg.progress_timeout = SimDuration::from_millis(600);
            s.cfg.client_retry = SimDuration::from_millis(900);
            s.cfg.remote_timeout = SimDuration::from_millis(500);
            // Checkpoint every 600 transactions (6 batches of 100), crash
            // the primary mid-measurement ("after 900 client transactions"
            // scaled to our shorter run).
            s.cfg.checkpoint_interval = 6;
            let crash_at = (s.warmup + s.measure / 3).as_secs_f64();
            s.faults = vec![FaultSpec::crash_at_secs(ReplicaId::new(0, 0), crash_at)];
            if !args.quick {
                s.measure = SimDuration::from_secs(6);
            }
            right.push(s.run());
        }
    }
    right.matrix(
        "replicas per cluster",
        &xs,
        |m| m.n.to_string(),
        |m| m.throughput_txn_s,
        "throughput (txn/s), primary failure mid-run",
    );

    println!();
    println!("Expected shapes (paper): Zyzzyva collapses under any failure; the");
    println!("other protocols lose a moderate fraction under f failures; GeoBFT");
    println!("and Pbft both recover from a primary failure via (remote + local)");
    println!("view changes, at a small overall throughput cost.");
    left.write_json(&args);
}
