//! Micro-benchmarks of the execution substrate: YCSB table operations
//! and batch execution (the per-transaction execution cost the simulator
//! charges).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdb_common::ids::ClientId;
use rdb_store::{KvStore, Operation, Value};
use rdb_workload::ycsb::{YcsbConfig, YcsbWorkload};

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore");
    g.throughput(Throughput::Elements(1));
    let mut store = KvStore::with_ycsb_records(100_000);
    let mut i = 0u64;
    g.bench_function("write", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            store.execute(&Operation::Write {
                key: i,
                value: Value::from_u64(i),
            })
        })
    });
    g.bench_function("read", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            store.execute(&Operation::Read { key: i })
        })
    });
    g.bench_function("state_digest", |b| b.iter(|| store.state_digest()));
    g.finish();
}

fn bench_batch_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch-exec");
    for batch in [10usize, 100, 300] {
        let cfg = YcsbConfig {
            record_count: 100_000,
            batch_size: batch,
            ..YcsbConfig::default()
        };
        let mut w = YcsbWorkload::new(cfg, ClientId::new(0, 0), 7);
        let ops: Vec<Operation> = w.next_batch(0).txns.into_iter().map(|t| t.op).collect();
        let mut store = KvStore::with_ycsb_records(100_000);
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &ops, |b, ops| {
            b.iter(|| store.execute_batch(std::hint::black_box(ops)))
        });
    }
    g.finish();
}

/// The fingerprint-rebuild cost an unfingerprinted catch-up pays
/// (recovery replay, lane-pool shutdown): the store tracks which of its
/// internal shards a write dirtied, so `rebuild_fingerprint` rescans
/// only those — against `rebuild_fingerprint_full`'s whole-table rescan,
/// the pre-sharding behavior. A touch set that lands in one shard of a
/// 100k-record table should rebuild roughly [`rdb_store::STORE_SHARDS`]×
/// faster.
fn bench_fingerprint_rebuild(c: &mut Criterion) {
    let mut g = c.benchmark_group("store-exec");
    g.sample_size(20);
    // Each iteration dirties one internal shard (64 writes to keys
    // congruent mod STORE_SHARDS — the sparse-update shape checkpoint
    // intervals produce), then rebuilds; the two variants differ only in
    // the rescan, so their gap is the amortization.
    for records in [10_000u64, 100_000] {
        g.bench_with_input(
            BenchmarkId::new("dirty-rescan", records),
            &records,
            |b, &records| {
                let mut store = KvStore::with_ycsb_records(records);
                let mut i = 0u64;
                b.iter(|| {
                    for _ in 0..64 {
                        i += 1;
                        store.execute_unfingerprinted(&Operation::Write {
                            key: (i * rdb_store::STORE_SHARDS as u64) % records,
                            value: Value::from_u64(i),
                        });
                    }
                    store.rebuild_fingerprint()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("full-rescan", records),
            &records,
            |b, &records| {
                let mut store = KvStore::with_ycsb_records(records);
                let mut i = 0u64;
                b.iter(|| {
                    for _ in 0..64 {
                        i += 1;
                        store.execute_unfingerprinted(&Operation::Write {
                            key: (i * rdb_store::STORE_SHARDS as u64) % records,
                            value: Value::from_u64(i),
                        });
                    }
                    store.rebuild_fingerprint_full()
                })
            },
        );
    }
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let cfg = YcsbConfig::default(); // 600 k records, batch 100
    let mut w = YcsbWorkload::new(cfg, ClientId::new(0, 0), 7);
    let mut seq = 0u64;
    c.bench_function("ycsb/next_batch_100", |b| {
        b.iter(|| {
            seq += 1;
            w.next_batch(seq)
        })
    });
}

criterion_group!(
    benches,
    bench_ops,
    bench_batch_execution,
    bench_fingerprint_rebuild,
    bench_workload_generation
);
criterion_main!(benches);
