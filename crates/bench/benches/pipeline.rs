//! Pipeline staging benchmarks (paper Figure 9).
//!
//! Three angles on the staged runtime:
//!
//! * `pipeline-verify-fanout` — fixed verification-heavy work (a queue of
//!   commit certificates, each carrying `n - f` signatures) drained by
//!   1/2/4 verifier threads running the same pure
//!   [`VerifiedMessage::check`] the fabric's verify stage runs. Wall time
//!   dropping as fan-out grows = verification throughput scaling.
//! * `pipeline-fabric-occupancy` — the real threaded fabric under a
//!   verification-heavy closed-loop workload at verifier fan-out 1 vs 4,
//!   reporting completed transactions and worker-thread occupancy (the
//!   per-stage busy counters from `resilientdb::Metrics`).
//! * `pipeline-fabric-batch` — the original fabric macro-benchmark (E8):
//!   wall-clock throughput across batch sizes, the fabric-level analogue
//!   of Figure 13's batching sweep.
//! * `pipeline-checkpoint` — the checkpoint stage off / on / with
//!   snapshot retention: the cost of certified garbage collection, which
//!   runs off the critical path (live fingerprinting in the executor and
//!   the periodic table clone are the only on-path additions).
//! * `pipeline-overload` / `pipeline-simnet-overload` — offered load far
//!   above capacity at verifier fan-out 1/2/4, with deliberately tiny
//!   bounded input queues. The point is the *shape* of the degradation:
//!   throughput flattens near capacity while the input queue depth stays
//!   at its bound (flat memory) and the overflow lands in the
//!   shed/blocked counters — instead of the unbounded-queue collapse the
//!   "Looking Glass" study documents. The simnet variant shows the same
//!   policy deterministically on single-core CI hosts.
//! * `pipeline-simnet-lanes` / `pipeline-fabric-lanes` — the key-sharded
//!   execution-lane sweep (1/2/4 lanes) on the modeled pipeline and on
//!   the real threaded fabric. The modeled sweep is execution-bound and
//!   gated by the bounded exec queue, so throughput must scale with the
//!   lane count deterministically; the fabric sweep reports per-lane
//!   occupancy from the deployment's lane rows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdb_common::config::SystemConfig;
use rdb_common::ids::{ClientId, ClusterId, NodeId, ReplicaId};
use rdb_consensus::certificate::{commit_payload, CommitCertificate, CommitSig};
use rdb_consensus::config::ProtocolKind;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_consensus::messages::Message;
use rdb_consensus::stage::Stage;
use rdb_consensus::stage::VerifiedMessage;
use rdb_consensus::types::{ClientBatch, SignedBatch, Transaction};
use rdb_crypto::sign::KeyStore;
use resilientdb::{DeploymentBuilder, QueuePolicy};
use std::sync::Arc;
use std::time::Duration;

/// Build a pool of valid `GlobalShare` messages: 1 client signature +
/// `n - f` commit signatures each — the most verification-heavy message
/// the protocols exchange.
fn cert_workload(count: usize) -> (SystemConfig, CryptoCtx, Vec<(NodeId, Message)>) {
    let system = SystemConfig::geo(1, 4).unwrap();
    let ks = KeyStore::new(0xBE7C);
    let me = ReplicaId::new(0, 0);
    let crypto = CryptoCtx::new(ks.register(me.into()), ks.verifier(), true);
    let client = ClientId::new(0, 0);
    let client_signer = ks.register(client.into());
    let peer_signers: Vec<_> = (1..4)
        .map(|i| {
            (
                ReplicaId::new(0, i),
                ks.register(ReplicaId::new(0, i).into()),
            )
        })
        .collect();

    let msgs = (0..count as u64)
        .map(|round| {
            let batch = ClientBatch {
                client,
                batch_seq: round,
                txns: (0..10)
                    .map(|i| Transaction {
                        client,
                        seq: round * 10 + i,
                        op: rdb_store::Operation::NoOp,
                    })
                    .collect(),
            };
            let digest = batch.digest();
            let sb = SignedBatch {
                batch,
                pubkey: client_signer.public_key(),
                sig: client_signer.sign(digest.as_bytes()),
            };
            let payload = commit_payload(ClusterId(0), round, &digest);
            let commits: Vec<CommitSig> = peer_signers
                .iter()
                .map(|(r, s)| CommitSig {
                    replica: *r,
                    sig: s.sign(&payload),
                })
                .collect();
            let cert = CommitCertificate {
                cluster: ClusterId(0),
                round,
                digest,
                batch: sb,
                commits,
            };
            (
                NodeId::Replica(ReplicaId::new(0, 1)),
                Message::GlobalShare { cert },
            )
        })
        .collect();
    (system, crypto, msgs)
}

/// Drain `msgs` through `fanout` verifier threads (strided batches, no
/// shared queue — pure verification scaling); panics on any drop (the
/// workload is honestly signed, so a drop is a bug).
fn drain_with_fanout(
    system: &SystemConfig,
    crypto: &CryptoCtx,
    msgs: &Arc<Vec<(NodeId, Message)>>,
    fanout: usize,
) -> usize {
    let system = Arc::new(system.clone());
    let handles: Vec<_> = (0..fanout)
        .map(|stripe| {
            let msgs = Arc::clone(msgs);
            let crypto = crypto.clone();
            let system = Arc::clone(&system);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                for (from, msg) in msgs.iter().skip(stripe).step_by(fanout) {
                    if VerifiedMessage::check(&system, &crypto, *from, msg.clone()).is_some() {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let ok: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(ok, msgs.len(), "verifier dropped honest traffic");
    ok
}

fn bench_verify_fanout(c: &mut Criterion) {
    let (system, crypto, msgs) = cert_workload(256);
    let msgs = Arc::new(msgs);
    let mut g = c.benchmark_group("pipeline-verify-fanout");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(msgs.len() as u64));
    for fanout in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(fanout),
            &fanout,
            |b, &fanout| b.iter(|| black_box(drain_with_fanout(&system, &crypto, &msgs, fanout))),
        );
    }
    g.finish();
}

/// The modeled pipeline in `rdb-simnet`: deterministic and independent of
/// the host's core count (on a 1-core CI box the thread benches above
/// cannot scale, but the *model* still must). Virtual throughput should
/// rise with verifier fan-out on this verification-bound workload; the
/// numbers are printed per fan-out.
fn bench_simnet_fanout(c: &mut Criterion) {
    use rdb_simnet::{PipelineModel, Scenario};
    let mut g = c.benchmark_group("pipeline-simnet-fanout");
    g.sample_size(2);
    for fanout in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let mut s = Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
                    s.logical_clients = 4_000;
                    s.compute.pipeline = PipelineModel::with_verifiers(fanout);
                    let m = s.with_batch_size(50).run();
                    eprintln!(
                        "    modeled fanout={fanout}: {:.0} txn/s",
                        m.throughput_txn_s
                    );
                    m.throughput_txn_s as u64
                })
            },
        );
    }
    g.finish();
}

fn bench_fabric_occupancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline-fabric-occupancy");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for fanout in [1usize, 4] {
        g.throughput(Throughput::Elements(50));
        g.bench_with_input(
            BenchmarkId::from_parameter(fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
                        .batch_size(50)
                        .clients(8)
                        .records(1_000)
                        .verifier_threads(fanout)
                        .duration(Duration::from_millis(300))
                        .run();
                    eprintln!(
                        "    fanout={fanout}: {} txns, worker occupancy {:.1}%",
                        report.completed_txns,
                        100.0 * report.worker_occupancy()
                    );
                    report.completed_txns
                })
            },
        );
    }
    g.finish();
}

/// The fabric under overload: 24 closed-loop clients against a 4-replica
/// PBFT cluster whose input queues are clamped to 16 envelopes
/// (shed-on-full). Degradation must be graceful: the input depth can
/// never exceed the bound × replicas no matter the offered load, and the
/// overflow is visible as shed droppable traffic plus blocked request
/// admissions rather than as queue growth.
fn bench_overload(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline-overload");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for fanout in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
                        .batch_size(10)
                        .clients(24)
                        .records(1_000)
                        .verifier_threads(fanout)
                        .input_queue(QueuePolicy::shed(16))
                        .duration(Duration::from_millis(300))
                        .run();
                    let input = report.stages.row(Stage::Input);
                    assert!(
                        input.queue_depth <= 16 * 4,
                        "input queue must stay at its bound: {}",
                        report.stages.summary()
                    );
                    eprintln!(
                        "    fanout={fanout}: {} txns, input depth {} (bound 64), shed {}, blocked {:?}",
                        report.completed_txns, input.queue_depth, input.shed, input.blocked,
                    );
                    report.completed_txns
                })
            },
        );
    }
    g.finish();
}

/// The same overload shape in the simulator: offered load (240 batch
/// clients) far above what one modeled primary verifies, with a 64-deep
/// shedding input bound. Shed traffic is recovered by retransmission, so
/// the scenario runs with short retry/progress timers (without them a
/// fully shed instance stays stalled for the whole modeled window) and
/// measures from t=0 so the admission burst's shedding is visible.
/// Deterministic regardless of host cores; numbers are printed per
/// fan-out.
fn bench_simnet_overload(c: &mut Criterion) {
    use rdb_common::time::SimDuration;
    use rdb_simnet::{Overload, PipelineModel, Scenario};
    let mut g = c.benchmark_group("pipeline-simnet-overload");
    g.sample_size(2);
    for fanout in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(fanout),
            &fanout,
            |b, &fanout| {
                b.iter(|| {
                    let mut s = Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
                    s.logical_clients = 12_000;
                    s.cfg.client_retry = SimDuration::from_millis(250);
                    s.cfg.progress_timeout = SimDuration::from_millis(600);
                    s.warmup = SimDuration::ZERO;
                    s.compute.pipeline =
                        PipelineModel::with_verifiers(fanout).with_input_queue(64, Overload::Shed);
                    let m = s.with_batch_size(50).run();
                    assert!(m.max_input_depth <= 65, "modeled depth past the bound");
                    assert!(
                        m.completed_batches > 0,
                        "modeled overload must degrade gracefully, not stall: {}",
                        m.summary()
                    );
                    eprintln!(
                        "    modeled overload fanout={fanout}: {:.0} txn/s, shed {}, max depth {}",
                        m.throughput_txn_s, m.shed_msgs, m.max_input_depth
                    );
                    m.shed_msgs
                })
            },
        );
    }
    g.finish();
}

/// The modeled execution-lane sweep: the same deterministic scenario at
/// 1/2/4 key-sharded lanes over an execution-bound workload (per-txn
/// materialization cost raised 100×, exec queue clamped to the reorder
/// window). YCSB keys spread across `key % lanes` shards, so lanes drain
/// the materialization backlog in parallel and the worker blocks less at
/// the bounded exec queue — modeled throughput must rise with the lane
/// count even on a single-core CI host.
fn bench_simnet_lanes(c: &mut Criterion) {
    use rdb_simnet::{PipelineModel, Scenario};
    let mut g = c.benchmark_group("pipeline-simnet-lanes");
    g.sample_size(2);
    let mut baseline = 0.0f64;
    for lanes in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                let mut s = Scenario::paper(ProtocolKind::Pbft, 1, 4).quick();
                s.logical_clients = 4_000;
                s.compute.exec_ns_per_txn = 200_000;
                s.compute.pipeline = PipelineModel::default()
                    .with_exec_lanes(lanes)
                    .with_exec_queue(4);
                let m = s.with_batch_size(50).run();
                eprintln!(
                    "    modeled lanes={lanes}: {:.0} txn/s, gate waits {} ({:?} blocked)",
                    m.throughput_txn_s, m.stats.exec_gate_waits, m.stats.exec_gate_wait
                );
                if lanes == 1 {
                    baseline = m.throughput_txn_s;
                } else {
                    assert!(
                        m.throughput_txn_s >= baseline,
                        "modeled throughput must not regress with more lanes: \
                         {} lanes {:.0} vs 1 lane {:.0}",
                        lanes,
                        m.throughput_txn_s,
                        baseline
                    );
                }
                m.throughput_txn_s as u64
            })
        });
    }
    g.finish();
}

/// The threaded fabric across execution-lane counts: the same
/// closed-loop deployment at 1/2/4 lanes, printing completed
/// transactions and per-lane occupancy (`DeploymentReport`'s lane rows).
/// On a many-core host with an execution-heavy table this shows the real
/// lane pool's scaling; on a starved CI box the value is the invariant —
/// results and throughput at 1 lane match the sequential executor, and
/// multi-lane runs stay correct under any interleaving.
fn bench_fabric_lanes(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline-fabric-lanes");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for lanes in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(50));
        g.bench_with_input(BenchmarkId::from_parameter(lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
                    .batch_size(50)
                    .clients(8)
                    .records(100_000)
                    .exec_lanes(lanes)
                    .duration(Duration::from_millis(300))
                    .run();
                let occupancy: Vec<String> = report
                    .exec_lane_occupancy()
                    .iter()
                    .map(|(lane, occ)| format!("L{lane} {:.1}%", 100.0 * occ))
                    .collect();
                eprintln!(
                    "    lanes={lanes}: {} txns, lane occupancy [{}]",
                    report.completed_txns,
                    occupancy.join(", ")
                );
                report.completed_txns
            })
        });
    }
    g.finish();
}

/// Checkpointing cost on the fabric: the same closed-loop deployment
/// with the checkpoint stage off, on, and on-with-snapshots. The stage
/// runs off the critical path, so throughput should degrade only by the
/// executor's live fingerprinting plus (with snapshots) the periodic
/// table clone — while exec-to-stable lag stays bounded and the ledger
/// prefix is actually compacted (printed per iteration).
fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline-checkpoint");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for (label, interval, snapshots) in [
        ("off", 0u64, false),
        ("on", 8, false),
        ("snapshots", 8, true),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
                    .batch_size(10)
                    .clients(4)
                    .records(1_000)
                    .checkpoint_interval(interval)
                    .checkpoint_snapshots(snapshots)
                    .duration(Duration::from_millis(300))
                    .run();
                let stable = report
                    .checkpoints
                    .values()
                    .map(|ckpt| ckpt.stable_height)
                    .max()
                    .unwrap_or(0);
                let retained = report
                    .ledgers
                    .values()
                    .map(|l| l.len())
                    .max()
                    .unwrap_or(0);
                eprintln!(
                    "    {label}: {} txns, max stable height {stable}, max retained blocks {retained}",
                    report.completed_txns
                );
                black_box(report.completed_txns)
            })
        });
    }
    g.finish();
}

fn bench_fabric_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline-fabric-batch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for batch in [10usize, 50] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
                    .batch_size(batch)
                    .clients(4)
                    .records(1_000)
                    .duration(Duration::from_millis(300))
                    .run();
                report.completed_txns
            })
        });
    }
    g.finish();
}

/// Serialization hot path (`pipeline-serialize`): encode a realistic
/// message mix — batched PrePrepares, control messages, certificates,
/// client replies — through the wire codec, comparing a fresh allocation
/// per send against [`rdb_consensus::codec::WireCodec`]'s reused buffer
/// (what every socket link holds). The Looking Glass study calls
/// serialization on the hot path a place real BFT systems win or lose
/// throughput; this pins the win of not allocating there.
fn bench_serialize(c: &mut Criterion) {
    use rdb_consensus::codec::{encode_frame_into, WireCodec};

    let (_system, _crypto, certs) = cert_workload(64);
    let me: NodeId = ReplicaId::new(0, 0).into();
    let peer: NodeId = ReplicaId::new(0, 1).into();
    let client = ClientId::new(0, 0);
    let big_batch = |seq: u64| SignedBatch {
        batch: ClientBatch {
            client,
            batch_seq: seq,
            txns: (0..50)
                .map(|i| Transaction {
                    client,
                    seq: seq * 50 + i,
                    op: rdb_store::Operation::Write {
                        key: i,
                        value: rdb_store::Value::from_u64(i),
                    },
                })
                .collect(),
        },
        pubkey: Default::default(),
        sig: Default::default(),
    };
    // The mix a busy PBFT primary actually sends: one batched
    // PrePrepare, the n² control fan-out, certificates, replies.
    let mut mix: Vec<Message> = Vec::new();
    for (i, (_, cert)) in certs.into_iter().enumerate() {
        let batch = big_batch(i as u64);
        mix.push(Message::PrePrepare {
            scope: rdb_consensus::Scope::Global,
            view: 0,
            seq: i as u64,
            digest: batch.digest(),
            batch,
        });
        for _ in 0..3 {
            mix.push(Message::Prepare {
                scope: rdb_consensus::Scope::Global,
                view: 0,
                seq: i as u64,
                digest: Default::default(),
            });
        }
        mix.push(cert);
    }

    let mut g = c.benchmark_group("pipeline-serialize");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(mix.len() as u64));
    g.bench_function("alloc-per-send", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for msg in &mix {
                let mut out = Vec::new();
                encode_frame_into(&mut out, me, peer, msg);
                total += black_box(&out).len();
            }
            total
        })
    });
    g.bench_function("reused-buffer", |b| {
        let mut codec = WireCodec::new();
        b.iter(|| {
            let mut total = 0usize;
            for msg in &mix {
                total += black_box(codec.encode_frame(me, peer, msg)).len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_verify_fanout,
    bench_simnet_fanout,
    bench_fabric_occupancy,
    bench_overload,
    bench_simnet_overload,
    bench_simnet_lanes,
    bench_fabric_lanes,
    bench_checkpoint,
    bench_fabric_batch,
    bench_serialize
);
criterion_main!(benches);
