//! Macro-benchmark of the real threaded fabric (E8): wall-clock
//! throughput of an in-process cluster with real signatures and real
//! execution — the fabric-level analogue of Figure 13's batching sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdb_consensus::config::ProtocolKind;
use resilientdb::DeploymentBuilder;
use std::time::Duration;

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric-pbft-1x4");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(12));
    for batch in [10usize, 50] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
                    .batch_size(batch)
                    .clients(4)
                    .records(1_000)
                    .duration(Duration::from_millis(300))
                    .run();
                report.completed_txns
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
