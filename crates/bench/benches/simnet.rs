//! Macro-benchmark: how fast the discrete-event simulator itself runs
//! (host time per simulated deployment), usable for regression tracking
//! of the whole consensus + network stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn tiny(kind: ProtocolKind) -> Scenario {
    let mut s = Scenario::paper(kind, 2, 4).quick();
    s.logical_clients = 2_000;
    s
}

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate-2x4");
    g.sample_size(10);
    for kind in [
        ProtocolKind::GeoBft,
        ProtocolKind::Pbft,
        ProtocolKind::HotStuff,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| b.iter(|| tiny(*kind).run().completed_batches),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
