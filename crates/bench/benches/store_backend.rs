//! Micro-benchmarks of the durable storage engine against the in-memory
//! baseline: the YCSB-shaped write path the executor drives (8-byte
//! big-endian keys, 32-byte table images), and the WAL batch-size sweep —
//! how much of the per-record framing and checksum cost one decision's
//! batch amortizes. fsync stays off, as in CI: the sweep measures the
//! engine, not the disk cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdb_storage::{Keyspace, LogBackend, LogConfig, MemoryBackend, StorageBackend, WriteBatch};
use std::path::PathBuf;

/// Keys cycle over a bounded YCSB-sized working set.
const RECORDS: u64 = 100_000;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rdb-bench-store-backend-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

/// One executor-shaped batch: `n` table puts starting at key `start`.
fn table_batch(start: u64, n: usize) -> WriteBatch {
    let mut b = WriteBatch::new();
    for i in 0..n as u64 {
        let key = (start + i) % RECORDS;
        b.put(
            Keyspace::Table,
            key.to_be_bytes().to_vec(),
            [0u8; 32].to_vec(),
        );
    }
    b
}

/// Memory vs durable on the same write stream: what WAL framing,
/// checksumming and memtable upkeep cost per applied record.
fn bench_backend_write_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("store-backend");
    const PER: usize = 64;
    g.throughput(Throughput::Elements(PER as u64));

    let mut mem = MemoryBackend::new();
    let mut i = 0u64;
    g.bench_function("write/memory", |b| {
        b.iter(|| {
            i += PER as u64;
            mem.apply(table_batch(i, PER)).expect("apply")
        })
    });

    let dir = scratch("write-path");
    let mut log = LogBackend::open(
        &dir,
        LogConfig {
            fsync: false,
            ..LogConfig::default()
        },
    )
    .expect("open durable engine");
    let mut j = 0u64;
    g.bench_function("write/durable", |b| {
        b.iter(|| {
            j += PER as u64;
            log.apply(table_batch(j, PER)).expect("apply")
        })
    });
    g.finish();
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The WAL batch-size sweep: one record frames one batch, so larger
/// batches amortize the 12-byte framing + SHA-256 checksum. Throughput
/// is per put, making the curves directly comparable.
fn bench_wal_batch_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("store-backend/wal-batch");
    for per in [1usize, 8, 64, 256] {
        let dir = scratch(&format!("wal-sweep-{per}"));
        let mut log = LogBackend::open(
            &dir,
            LogConfig {
                fsync: false,
                ..LogConfig::default()
            },
        )
        .expect("open durable engine");
        let mut i = 0u64;
        g.throughput(Throughput::Elements(per as u64));
        g.bench_with_input(BenchmarkId::from_parameter(per), &per, |b, &per| {
            b.iter(|| {
                i += per as u64;
                log.apply(table_batch(i, per)).expect("apply")
            })
        });
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_backend_write_path,
    bench_wal_batch_size_sweep
);
criterion_main!(benches);
