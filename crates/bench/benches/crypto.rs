//! Micro-benchmarks of the cryptographic substrate (E7): SHA-256,
//! HMAC-SHA256, signing/verification and Merkle trees — the primitives
//! whose costs §3 of the paper identifies as a throughput limiter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_crypto::digest::Digest;
use rdb_crypto::hmac::hmac_sha256;
use rdb_crypto::merkle::MerkleTree;
use rdb_crypto::sha256::sha256;
use rdb_crypto::sign::KeyStore;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 250, 1024, 5450] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = vec![0x5au8; 250]; // a control message
    c.bench_function("hmac_sha256/250B", |b| {
        b.iter(|| hmac_sha256(std::hint::black_box(&key), std::hint::black_box(&msg)))
    });
}

fn bench_sign_verify(c: &mut Criterion) {
    let ks = KeyStore::new(1);
    let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 0)));
    let verifier = ks.verifier();
    let pk = signer.public_key();
    let msg = vec![0x11u8; 96]; // commit payload size
    let sig = signer.sign(&msg);
    c.bench_function("sign/commit-payload", |b| {
        b.iter(|| signer.sign(std::hint::black_box(&msg)))
    });
    c.bench_function("verify/commit-payload", |b| {
        b.iter(|| verifier.verify(&pk, std::hint::black_box(&msg), &sig))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    for n in [16usize, 128, 1024] {
        let leaves: Vec<Digest> = (0..n as u64)
            .map(|i| Digest::of(&i.to_le_bytes()))
            .collect();
        g.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, l| {
            b.iter(|| MerkleTree::build(std::hint::black_box(l)))
        });
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();
        let proof = tree.prove(n / 2).expect("proof");
        g.bench_with_input(BenchmarkId::new("verify", n), &proof, |b, p| {
            b.iter(|| MerkleTree::verify(&root, &leaves[n / 2], std::hint::black_box(p)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_sign_verify,
    bench_merkle
);
criterion_main!(benches);
