//! Full-mode scenario runs: each test executes a catalog scenario on
//! *both* runtimes — the deterministic simulator and the threaded fabric
//! — letting the scenario's own cross-runtime assertions fire
//! (byte-identical ledgers at 1 and 4 execution lanes for the
//! fault-free scenarios, honest-replica agreement plus a progress floor
//! for the fault scripts). The Byzantine-primary matrix runs in
//! `tests/consensus_safety.rs` at the workspace root; the quick
//! (simulator-only) catalog is exercised by `repro_scenarios --quick`
//! and the CI determinism diff.

use rdb_scenario::{healing_partition, smallbank, token_rmw, Mode};

/// Hot-account transfers with surfaced underflow aborts: the simulator
/// and the fabric (at 1 and 4 lanes) must commit byte-identical chains,
/// and the independent replay must find aborts on every one of them.
#[test]
fn smallbank_commits_identically_on_both_runtimes() {
    let outcome = smallbank(Mode::Full);
    assert!(outcome.aborts > 0, "no underflow ever surfaced");
    assert!(outcome.aborts < outcome.programs, "every transfer aborted");
}

/// Multi-key token mints (5-key RMWs spanning every lane) conserve
/// supply on the replayed final state of both runtimes, with the same
/// byte-identity matrix as SmallBank.
#[test]
fn token_rmw_conserves_supply_on_both_runtimes() {
    let outcome = token_rmw(Mode::Full);
    assert!(outcome.programs > 0);
}

/// A 2+2 partition from deployment start heals mid-run: with no side
/// holding a prepare quorum, every committed block proves post-heal
/// recovery — in virtual time and in wall-clock time.
#[test]
fn healing_partition_recovers_on_both_runtimes() {
    let outcome = healing_partition(Mode::Full);
    assert!(outcome.blocks > 0, "nothing committed after the heal");
}
