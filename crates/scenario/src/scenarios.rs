//! The named scenario catalog.
//!
//! Each scenario is a function that *runs and asserts*: it drives the
//! deterministic simulator (always), optionally the threaded fabric
//! ([`Mode::Full`]), checks the scenario-specific invariants, and
//! returns a deterministic [`ScenarioOutcome`] derived from the
//! simulator run — the record the `repro_scenarios --quick --json`
//! binary serializes and the CI determinism job diffs across two
//! invocations.
//!
//! | scenario            | workload            | faults                      | cross-runtime assertion |
//! |---------------------|---------------------|-----------------------------|-------------------------|
//! | `smallbank`         | hot-account transfers | none                      | byte-identical ledgers, lanes 1 & 4 |
//! | `token_rmw`         | multi-key mints/transfers | none                  | byte-identical ledgers, lanes 1 & 4 |
//! | `healing_partition` | hot-account transfers | 2+2 partition, heals      | honest agreement + post-heal progress |
//! | `byzantine_primary` | hot-account transfers | equivocating primary      | honest agreement + progress |

use crate::harness::{
    assert_agreement, assert_identical_prefix, replay_ledger, run_fabric, run_simnet, ReplayAudit,
    ScenarioOutcome, ScenarioSpec,
};
use crate::workloads::{smallbank_factory, token_factory, TOKEN_SUPPLY_KEY};
use rdb_common::ids::ReplicaId;
use rdb_common::time::{SimDuration, SimTime};
use rdb_consensus::adversary::AdversarySpec;
use rdb_consensus::config::ProtocolKind;
use rdb_ledger::Ledger;
use rdb_simnet::FaultSpec;
use std::time::Duration;

/// How much of a scenario to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Simulator only — deterministic, fast, what `--quick` reports.
    Quick,
    /// Simulator *and* threaded fabric, with cross-runtime assertions.
    Full,
}

/// The observer whose ledger is replayed; for fault scenarios the
/// scenario picks an honest observer instead.
const OBSERVER: ReplicaId = ReplicaId {
    cluster: rdb_common::ids::ClusterId(0),
    index: 0,
};

fn r(cluster: u16, index: u16) -> ReplicaId {
    ReplicaId::new(cluster, index)
}

/// Replay `ledger` and require program traffic to have actually flowed.
fn audited_replay(ledger: &Ledger, records: u64, label: &str) -> ReplayAudit {
    let audit = replay_ledger(ledger, records)
        .unwrap_or_else(|e| panic!("{label}: replay audit failed: {e}"));
    assert!(audit.programs > 0, "{label}: no programs committed");
    audit
}

/// SmallBank transfers with hot-account conflicts on PBFT (1×4).
///
/// Asserts in the simulator: progress, all-replica agreement, and — via
/// the replay audit — that the workload surfaced *both* committed and
/// aborted transfers (the underflow rule at work). In [`Mode::Full`] the
/// same spec runs on the fabric at 1 and 4 execution lanes and each
/// committed chain must be byte-identical to the simulator's over a
/// non-trivial prefix.
pub fn smallbank(mode: Mode) -> ScenarioOutcome {
    let mut spec = ScenarioSpec::new(ProtocolKind::Pbft, 1, 4);
    spec.factory = Some(smallbank_factory(spec.records, spec.batch));
    let (metrics, ledgers) = run_simnet(&spec);
    assert!(metrics.completed_batches > 0, "smallbank: no progress");
    assert_agreement(&ledgers, &[], 3, "smallbank/simnet");
    let sim = &ledgers[&OBSERVER];
    let audit = audited_replay(sim, spec.records, "smallbank/simnet");
    assert!(audit.aborts > 0, "smallbank: no transfer ever aborted");
    assert!(
        audit.aborts < audit.programs,
        "smallbank: every transfer aborted"
    );

    if mode == Mode::Full {
        for lanes in [1usize, 4] {
            let label = format!("smallbank/fabric lanes={lanes}");
            let report = run_fabric(&spec, lanes, Duration::from_millis(900), None);
            assert!(
                report.completed_batches > 0,
                "{label}: {}",
                report.summary()
            );
            report
                .audit_ledgers()
                .unwrap_or_else(|e| panic!("{label}: ledgers inconsistent: {e}"));
            report
                .audit_execution_stage()
                .unwrap_or_else(|e| panic!("{label}: execution audit failed: {e}"));
            let fabric = &report.ledgers[&OBSERVER];
            assert_identical_prefix(sim, fabric, 3, &label);
            // The fabric chain independently replays too, aborts and all.
            let fa = audited_replay(fabric, spec.records, &label);
            assert!(fa.aborts > 0, "{label}: no aborts reached the chain");
        }
    }
    ScenarioOutcome::from_replay("smallbank", spec.kind, sim, &audit)
}

/// Multi-key token mints and transfers on PBFT (1×4): every mint is a
/// 5-key read-modify-write spanning all four execution lanes.
///
/// Asserts the token conservation invariant on the replayed final state
/// (`minted supply == total balance growth`), plus the same byte-identity
/// matrix as [`smallbank`] in [`Mode::Full`].
pub fn token_rmw(mode: Mode) -> ScenarioOutcome {
    const ACCOUNTS: u64 = 64;
    let mut spec = ScenarioSpec::new(ProtocolKind::Pbft, 1, 4);
    spec.factory = Some(token_factory(ACCOUNTS, spec.batch));
    let (metrics, ledgers) = run_simnet(&spec);
    assert!(metrics.completed_batches > 0, "token_rmw: no progress");
    assert_agreement(&ledgers, &[], 3, "token_rmw/simnet");
    let sim = &ledgers[&OBSERVER];
    let audit = audited_replay(sim, spec.records, "token_rmw/simnet");
    check_conservation(&audit, ACCOUNTS, "token_rmw/simnet");

    if mode == Mode::Full {
        for lanes in [1usize, 4] {
            let label = format!("token_rmw/fabric lanes={lanes}");
            let report = run_fabric(&spec, lanes, Duration::from_millis(900), None);
            assert!(
                report.completed_batches > 0,
                "{label}: {}",
                report.summary()
            );
            report
                .audit_ledgers()
                .unwrap_or_else(|e| panic!("{label}: ledgers inconsistent: {e}"));
            report
                .audit_execution_stage()
                .unwrap_or_else(|e| panic!("{label}: execution audit failed: {e}"));
            let fabric = &report.ledgers[&OBSERVER];
            assert_identical_prefix(sim, fabric, 3, &label);
            let fa = audited_replay(fabric, spec.records, &label);
            check_conservation(&fa, ACCOUNTS, &label);
        }
    }
    ScenarioOutcome::from_replay("token_rmw", spec.kind, sim, &audit)
}

/// `sum(balances) - sum(preload) == supply`: transfers conserve, mints
/// grow both sides equally, aborted programs touch nothing.
fn check_conservation(audit: &ReplayAudit, accounts: u64, label: &str) {
    let initial: u64 = (1..=accounts).sum();
    let total: u64 = (1..=accounts)
        .map(|k| audit.store.get(k).map(|v| v.counter()).unwrap_or(0))
        .sum();
    let supply = audit
        .store
        .get(TOKEN_SUPPLY_KEY)
        .map(|v| v.counter())
        .unwrap_or(0);
    assert!(supply > 0, "{label}: no mint ever committed");
    assert_eq!(total - initial, supply, "{label}: conservation violated");
}

/// A 2+2 network partition from deployment start that heals mid-run,
/// under SmallBank load on PBFT (1×4) with recovery timeouts.
///
/// With the cluster split 2/2 no side holds a prepare quorum (3), so
/// **nothing can commit while the cut is up** — every committed block is
/// therefore proof of post-heal recovery (client retransmissions and
/// view changes re-establishing progress). Asserts agreement across all
/// four replicas afterwards, in both runtimes.
pub fn healing_partition(mode: Mode) -> ScenarioOutcome {
    let mut spec = ScenarioSpec::new(ProtocolKind::Pbft, 1, 4);
    spec.factory = Some(smallbank_factory(spec.records, spec.batch));
    spec.fast_timeouts = true;
    let side_a = [r(0, 0), r(0, 1)];
    let side_b = [r(0, 2), r(0, 3)];
    spec.faults = FaultSpec::partition(
        &side_a,
        &side_b,
        SimTime::ZERO,
        SimTime(SimDuration::from_millis(1_000).as_nanos()),
    );
    // Leave ~2 s of healed virtual time for retransmission-driven
    // recovery and fresh commits.
    spec.measure = Some(SimDuration::from_millis(2_500));
    let (metrics, ledgers) = run_simnet(&spec);
    assert!(
        metrics.completed_batches > 0,
        "healing_partition: nothing committed after the heal: {}",
        metrics.summary()
    );
    assert_agreement(&ledgers, &[], 2, "healing_partition/simnet");
    let sim = &ledgers[&OBSERVER];
    let audit = audited_replay(sim, spec.records, "healing_partition/simnet");

    if mode == Mode::Full {
        let label = "healing_partition/fabric";
        let report = run_fabric(
            &spec,
            1,
            Duration::from_millis(2_200),
            Some((
                side_a.to_vec(),
                side_b.to_vec(),
                Duration::ZERO,
                Duration::from_millis(800),
            )),
        );
        assert!(
            report.completed_batches > 0,
            "{label}: nothing committed after the heal: {}",
            report.summary()
        );
        report
            .audit_ledgers()
            .unwrap_or_else(|e| panic!("{label}: ledgers inconsistent: {e}"));
        let fabric = &report.ledgers[&OBSERVER];
        audited_replay(fabric, spec.records, label);
        assert!(
            fabric.head_height() >= 2,
            "{label}: too little post-heal progress"
        );
    }
    ScenarioOutcome::from_replay("healing_partition", spec.kind, sim, &audit)
}

/// An equivocating primary per protocol, under SmallBank load.
///
/// The view-0 leader is wrapped in
/// [`AdversarySpec::EquivocatePrimary`]: victims receive well-formed
/// conflicting proposals in place of the honest ones. Victim counts are
/// chosen per protocol so the attack actually bites:
///
/// * **PBFT / GeoBFT** — 2 victims of 4: neither digest reaches a
///   prepare quorum, the progress timer fires, and a view change elects
///   an honest primary. Progress *implies* the view change worked.
/// * **HotStuff** — 1 victim: the honest `n − f` quorum (leader plus two
///   non-victims) still forms every QC, so commits continue; the victim
///   voted Prepare for the forged digest and must refuse the honest QC
///   (prepare- and skip-quorums may never both form), so it freezes at
///   the first equivocated slot — excluded from the agreement check.
/// * **Zyzzyva** — 1 victim: it speculatively executes the forged
///   history and its ledger legitimately diverges (excluded from the
///   agreement check); clients fall back to the `2f + 1` commit
///   certificate over the honest majority. No view change — the attack
///   is confined to the victim.
///
/// In every case the assertion is the paper's safety property: no two
/// honest replicas commit divergent blocks.
pub fn byzantine_primary(kind: ProtocolKind, mode: Mode) -> ScenarioOutcome {
    let (z, n, clients, victims): (usize, usize, usize, Vec<ReplicaId>) = match kind {
        ProtocolKind::Pbft => (1, 4, 2, vec![r(0, 1), r(0, 2)]),
        ProtocolKind::GeoBft => (2, 4, 2, vec![r(0, 1), r(0, 2)]),
        ProtocolKind::HotStuff => (1, 4, 4, vec![r(0, 1)]),
        ProtocolKind::Zyzzyva => (1, 4, 2, vec![r(0, 1)]),
        other => panic!("byzantine_primary: unsupported protocol {other:?}"),
    };
    // Zyzzyva victims speculatively execute the forged history, and a
    // HotStuff victim stalls at the first equivocated slot (it voted for
    // the forged digest and must refuse the honest QC): in both cases the
    // victim's frozen/forked chain is the *expected* blast radius, not a
    // safety violation.
    let exclude: Vec<ReplicaId> = match kind {
        ProtocolKind::Zyzzyva | ProtocolKind::HotStuff => victims.clone(),
        _ => Vec::new(),
    };
    // An honest, non-victim observer for the replay audit. (The wrapped
    // leader itself stays honest internally, but picking a third party
    // keeps the audit independent of the attacker.)
    let observer = if z > 1 { r(1, 0) } else { r(0, 3) };

    let mut spec = ScenarioSpec::new(kind, z, n);
    spec.clients = clients;
    spec.factory = Some(smallbank_factory(spec.records, spec.batch));
    spec.fast_timeouts = true;
    spec.adversaries = vec![(
        r(0, 0),
        AdversarySpec::EquivocatePrimary {
            victims: victims.clone(),
        },
    )];
    // View changes / slot skips take a few timeout rounds.
    spec.measure = Some(SimDuration::from_millis(3_000));

    let name = format!("byzantine_primary_{}", protocol_slug(kind));
    let (metrics, ledgers) = run_simnet(&spec);
    assert!(
        metrics.completed_batches > 0,
        "{name}/simnet: attack killed liveness: {}",
        metrics.summary()
    );
    assert_agreement(&ledgers, &exclude, 1, &format!("{name}/simnet"));
    let sim = &ledgers[&observer];
    let audit = audited_replay(sim, spec.records, &format!("{name}/simnet"));

    if mode == Mode::Full {
        let label = format!("{name}/fabric");
        let report = run_fabric(&spec, 1, Duration::from_millis(2_000), None);
        assert!(
            report.completed_batches > 0,
            "{label}: attack killed liveness: {}",
            report.summary()
        );
        // `audit_ledgers` insists *all* replicas agree; under Zyzzyva the
        // victim is allowed to diverge, so audit the honest set directly.
        assert_agreement(report.ledgers.iter(), &exclude, 1, &label);
        audited_replay(&report.ledgers[&observer], spec.records, &label);
    }
    ScenarioOutcome::from_replay(&name, kind, sim, &audit)
}

fn protocol_slug(kind: ProtocolKind) -> &'static str {
    match kind {
        ProtocolKind::Pbft => "pbft",
        ProtocolKind::GeoBft => "geobft",
        ProtocolKind::Zyzzyva => "zyzzyva",
        ProtocolKind::HotStuff => "hotstuff",
        ProtocolKind::Steward => "steward",
    }
}

/// Run the whole catalog in [`Mode::Quick`] (simulator only) and return
/// the deterministic outcome list — what `repro_scenarios --quick --json`
/// serializes.
pub fn quick_all() -> Vec<ScenarioOutcome> {
    run_all(Mode::Quick)
}

/// Run the whole catalog in `mode`.
pub fn run_all(mode: Mode) -> Vec<ScenarioOutcome> {
    let mut out = vec![smallbank(mode), token_rmw(mode), healing_partition(mode)];
    for kind in [
        ProtocolKind::Pbft,
        ProtocolKind::GeoBft,
        ProtocolKind::Zyzzyva,
        ProtocolKind::HotStuff,
    ] {
        out.push(byzantine_primary(kind, mode));
    }
    out
}
