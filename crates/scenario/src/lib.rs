//! Deterministic adversarial scenario harness over the transaction layer.
//!
//! The paper evaluates ResilientDB under YCSB point operations only. This
//! crate scripts *named scenarios* that drive the register-machine
//! transaction programs of `rdb_store::txn` — SmallBank-style transfers
//! with hot-account conflicts and surfaced aborts, multi-key token
//! read-modify-writes — through **both** runtimes: the deterministic
//! discrete-event simulator (`rdb-simnet`) and the real threaded fabric
//! (`resilientdb`). It also injects the classic fault scripts the paper
//! reasons about in §2: a network partition that heals mid-run, and a
//! Byzantine (equivocating) primary per protocol.
//!
//! # Assertion scoping
//!
//! Fault-free scenarios ([`scenarios::smallbank`], [`scenarios::token_rmw`])
//! assert the strongest possible property: the committed ledgers are
//! **byte-identical** between the simulator and the fabric — same batches,
//! same order, same post-execution state digests, hence identical block
//! hashes — and byte-identical again across execution lane counts (1 vs 4).
//! Both runtimes drive the same sans-io state machines, so with one
//! closed-loop client the proposal order is fully determined by client
//! `batch_seq` order and only timing may differ.
//!
//! Fault scenarios ([`scenarios::healing_partition`],
//! [`scenarios::byzantine_primary`]) cannot promise cross-runtime byte
//! identity: recovery artifacts (view-change no-ops, retransmission
//! interleavings) depend on *when* timers fire relative to commits, which
//! is exactly what differs between virtual and wall-clock time. They
//! assert the paper's consensus properties instead — non-divergence
//! across honest replicas (identical prefixes, identical state digests)
//! plus a progress floor — in both runtimes, with the same fault script.
//!
//! # Independent replay audit
//!
//! Every scenario re-executes the observer replica's committed ledger
//! against a fresh preloaded store ([`harness::replay_ledger`]) and
//! verifies each block's recorded `state_digest`. This is a
//! runtime-independent check: whatever the pipeline (sequential executor,
//! sharded lanes, simulator model) claimed about execution is re-derived
//! from the chain alone, and it is also where program/abort counts for
//! reports come from.

pub mod harness;
pub mod scenarios;
pub mod workloads;

pub use harness::{replay_ledger, ReplayAudit, ScenarioOutcome};
pub use scenarios::{
    byzantine_primary, healing_partition, quick_all, run_all, smallbank, token_rmw, Mode,
};
pub use workloads::{smallbank_factory, token_factory, SourceFactory};
