//! Deterministic transaction-program workloads.
//!
//! A workload here is a *source factory*: given a client id and the run
//! seed it returns a [`BatchSource`] producing that client's batches. The
//! same factory is installed in the simulator
//! (`Scenario::source_factory`) and the fabric
//! (`Fabric::spawn_source_clients`), and every choice below is a pure
//! function of `(seed, client, batch_seq, position)` — so both runtimes
//! propose byte-identical batches and the committed chains can be
//! compared byte for byte.
//!
//! Stores are preloaded with the YCSB records (`Value::from_u64(key)`),
//! so account `k` starts with balance `k`: the low-numbered "hot"
//! accounts are chronically underfunded, which is what makes the
//! SmallBank underflow abort a *natural* outcome of the workload rather
//! than an injected error.

use rdb_common::ids::ClientId;
use rdb_consensus::clients::BatchSource;
use rdb_consensus::types::{ClientBatch, Transaction};
use rdb_store::{Operation, TxnProgram};
use std::sync::Arc;

/// A shared, cloneable source factory: the shape both runtimes accept.
pub type SourceFactory = Arc<dyn Fn(ClientId, u64) -> BatchSource + Send + Sync>;

/// SplitMix64-style finalizer: a well-mixed pure function of its input,
/// used to derive every workload choice deterministically.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Derive a 64-bit stream for one operation slot.
fn slot_rng(seed: u64, client: ClientId, batch_seq: u64, i: u64) -> u64 {
    let c = ((client.cluster.0 as u64) << 32) | client.index as u64;
    mix(seed
        ^ mix(c)
        ^ mix(batch_seq
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i)))
}

/// Number of chronically underfunded "hot" accounts at the bottom of the
/// key space (balances 0..4 at preload).
pub const HOT_ACCOUNTS: u64 = 4;

/// SmallBank-style transfer mix over `accounts` preloaded balances.
///
/// Per batch slot:
/// * ~1/4 transfers *from* a hot account — amounts far above the hot
///   balance, so most of these surface [`rdb_store::TxnAbort::Underflow`]
///   (committed-but-aborted transfers, visible in the replicated
///   outcomes);
/// * ~1/4 transfers *to* a hot account (tops hot balances back up, so
///   some hot-sourced transfers later succeed — aborts stay data-, not
///   schedule-dependent);
/// * ~1/4 transfers between well-funded accounts (commits);
/// * ~1/4 guarded [`TxnProgram::transfer_checked`] transfers, exercising
///   the branch path instead of the abort path.
pub fn smallbank_factory(accounts: u64, batch: usize) -> SourceFactory {
    assert!(accounts > HOT_ACCOUNTS + 2, "need room for rich accounts");
    Arc::new(move |client, seed| smallbank_source(client, seed, accounts, batch))
}

/// One client's SmallBank batch stream (see [`smallbank_factory`]).
pub fn smallbank_source(client: ClientId, seed: u64, accounts: u64, batch: usize) -> BatchSource {
    Box::new(move |batch_seq| ClientBatch {
        client,
        batch_seq,
        txns: (0..batch as u64)
            .map(|i| {
                let r = slot_rng(seed, client, batch_seq, i);
                let rich_span = accounts - HOT_ACCOUNTS;
                let rich = |x: u64| HOT_ACCOUNTS + x % rich_span;
                let hot = |x: u64| x % HOT_ACCOUNTS;
                let prog = match r % 4 {
                    // Hot account pays out far more than it holds.
                    0 => TxnProgram::transfer(hot(r >> 2), rich(r >> 8), 10 + (r >> 16) % 40),
                    // Top a hot account back up.
                    1 => TxnProgram::transfer(rich(r >> 2), hot(r >> 8), 1 + (r >> 16) % 4),
                    // Rich-to-rich, usually funded.
                    2 => TxnProgram::transfer(rich(r >> 2), rich(r >> 8), 1 + (r >> 16) % 16),
                    // Guarded transfer: branches instead of aborting.
                    _ => {
                        TxnProgram::transfer_checked(rich(r >> 2), hot(r >> 8), 1 + (r >> 16) % 16)
                    }
                };
                Transaction {
                    client,
                    seq: batch_seq * batch as u64 + i,
                    op: Operation::Txn(prog),
                }
            })
            .collect(),
    })
}

/// The supply record of the token workload (preloaded balance 0).
pub const TOKEN_SUPPLY_KEY: u64 = 0;

/// Multi-key token read-modify-write mix over accounts `1..=accounts`.
///
/// Every third slot is a [`TxnProgram::mint`] over a 4-account window
/// plus the supply record — a 5-key footprint that *always* spans
/// several execution lanes at `exec_lanes = 4` (consecutive keys hit
/// distinct `key % lanes` shards), exercising the cross-lane
/// gather/eval/scatter path. The rest are transfers within the token
/// account set, so the conservation invariant holds on the final state:
///
/// `sum(balances) - sum(preloaded balances) == supply - 0`
pub fn token_factory(accounts: u64, batch: usize) -> SourceFactory {
    assert!(accounts >= 8, "need a 4-account mint window");
    Arc::new(move |client, seed| token_source(client, seed, accounts, batch))
}

/// One client's token batch stream (see [`token_factory`]).
pub fn token_source(client: ClientId, seed: u64, accounts: u64, batch: usize) -> BatchSource {
    Box::new(move |batch_seq| ClientBatch {
        client,
        batch_seq,
        txns: (0..batch as u64)
            .map(|i| {
                let r = slot_rng(seed, client, batch_seq, i).wrapping_add(0x70CE);
                let acct = |x: u64| 1 + x % accounts;
                let prog = if r.is_multiple_of(3) {
                    let base = 1 + (r >> 2) % (accounts - 3);
                    TxnProgram::mint(
                        TOKEN_SUPPLY_KEY,
                        &[base, base + 1, base + 2, base + 3],
                        1 + (r >> 16) % 8,
                    )
                } else {
                    TxnProgram::transfer(acct(r >> 2), acct(r >> 8), 1 + (r >> 16) % 12)
                };
                Transaction {
                    client,
                    seq: batch_seq * batch as u64 + i,
                    op: Operation::Txn(prog),
                }
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_bytes(src: &mut BatchSource, seq: u64) -> Vec<u8> {
        let b = (src)(seq);
        let mut out = Vec::new();
        for t in &b.txns {
            if let Operation::Txn(p) = &t.op {
                out.extend(p.canonical_bytes());
            }
        }
        out
    }

    #[test]
    fn sources_are_deterministic_across_instances() {
        let cid = ClientId::new(0, 0);
        for factory in [smallbank_factory(500, 5), token_factory(64, 5)] {
            let mut a = factory(cid, 7);
            let mut b = factory(cid, 7);
            for seq in 0..10 {
                assert_eq!(batch_bytes(&mut a, seq), batch_bytes(&mut b, seq));
            }
        }
    }

    #[test]
    fn distinct_clients_and_seeds_produce_distinct_streams() {
        let f = smallbank_factory(500, 5);
        let mut a = f(ClientId::new(0, 0), 7);
        let mut b = f(ClientId::new(0, 1), 7);
        let mut c = f(ClientId::new(0, 0), 8);
        let base = batch_bytes(&mut a, 0);
        assert_ne!(base, batch_bytes(&mut b, 0), "client id must matter");
        assert_ne!(base, batch_bytes(&mut c, 0), "seed must matter");
    }

    #[test]
    fn smallbank_surfaces_underflow_aborts_on_preloaded_balances() {
        // Run the first batches of one client against the preloaded
        // store: the hot-account mix must produce both commits and
        // underflow aborts (the scenario assertions rely on both).
        let mut store = rdb_store::KvStore::with_ycsb_records(500);
        let mut src = smallbank_factory(500, 5)(ClientId::new(0, 0), 7);
        let mut commits = 0;
        let mut aborts = 0;
        for seq in 0..20 {
            let batch = (src)(seq);
            for t in &batch.txns {
                match store.execute(&t.op) {
                    rdb_store::ExecOutcome::Txn(o) if o.is_aborted() => aborts += 1,
                    rdb_store::ExecOutcome::Txn(_) => commits += 1,
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }
        assert!(commits > 0, "no transfer ever committed");
        assert!(aborts > 0, "no transfer ever aborted");
    }

    #[test]
    fn token_mix_conserves_supply() {
        let accounts = 64u64;
        let mut store = rdb_store::KvStore::with_ycsb_records(accounts + 1);
        let initial: u64 = (1..=accounts).sum();
        let mut src = token_factory(accounts, 5)(ClientId::new(0, 0), 7);
        for seq in 0..30 {
            let batch = (src)(seq);
            for t in &batch.txns {
                store.execute(&t.op);
            }
        }
        let total: u64 = (1..=accounts)
            .map(|k| store.get(k).map(|v| v.counter()).unwrap_or(0))
            .sum();
        let supply = store
            .get(TOKEN_SUPPLY_KEY)
            .map(|v| v.counter())
            .unwrap_or(0);
        assert!(supply > 0, "no mint ever ran");
        assert_eq!(total - initial, supply, "token conservation violated");
    }
}
