//! Scenario runners and runtime-independent audits.
//!
//! One [`ScenarioSpec`] describes a deployment — protocol, topology,
//! workload factory, fault script — and can be executed on either
//! runtime: [`run_simnet`] drives the discrete-event simulator (virtual
//! time, deterministic), [`run_fabric`] boots the threaded fabric (OS
//! threads, wall-clock). Both install the *same* source factory and the
//! *same* adversary/fault script, which is what makes cross-runtime
//! assertions meaningful.

use crate::workloads::SourceFactory;
use rdb_common::ids::ReplicaId;
use rdb_common::time::SimDuration;
use rdb_consensus::adversary::AdversarySpec;
use rdb_consensus::config::{ExecMode, ProtocolKind};
use rdb_ledger::Ledger;
use rdb_simnet::{FaultSpec, RunMetrics, Scenario};
use rdb_store::KvStore;
use rdb_workload::ycsb::YcsbConfig;
use resilientdb::{DeploymentBuilder, DeploymentReport};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// A deployment + workload + fault script, runnable on either runtime.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Consensus protocol under test.
    pub kind: ProtocolKind,
    /// Clusters.
    pub z: usize,
    /// Replicas per cluster.
    pub n: usize,
    /// Closed-loop batch clients (must be ≥ `z`; the simulator refuses to
    /// run with fewer than one client per cluster).
    pub clients: usize,
    /// Preloaded YCSB records (account space for program workloads).
    pub records: u64,
    /// Transactions per client batch.
    pub batch: usize,
    /// Workload seed, shared by both runtimes.
    pub seed: u64,
    /// Program workload; `None` falls back to the YCSB generator.
    pub factory: Option<SourceFactory>,
    /// Simulator-side fault script (crashes, link drops, partitions).
    pub faults: Vec<FaultSpec>,
    /// Byzantine wrappers, installed identically in both runtimes.
    pub adversaries: Vec<(ReplicaId, AdversarySpec)>,
    /// Shorten protocol timeouts (recovery scenarios).
    pub fast_timeouts: bool,
    /// Override the simulator's measurement window.
    pub measure: Option<SimDuration>,
}

impl ScenarioSpec {
    /// A fault-free single-client spec with the equivalence-suite
    /// constants (500 records, batch 5, seed 7).
    pub fn new(kind: ProtocolKind, z: usize, n: usize) -> ScenarioSpec {
        ScenarioSpec {
            kind,
            z,
            n,
            clients: z.max(1),
            records: 500,
            batch: 5,
            seed: 7,
            factory: None,
            faults: Vec::new(),
            adversaries: Vec::new(),
            fast_timeouts: false,
            measure: None,
        }
    }
}

/// Run the spec on the simulator, returning the metrics and every
/// replica's committed ledger. Deterministic: equal specs produce equal
/// ledgers on every invocation.
pub fn run_simnet(spec: &ScenarioSpec) -> (RunMetrics, BTreeMap<ReplicaId, Ledger>) {
    let mut s = Scenario::paper(spec.kind, spec.z, spec.n).quick();
    s.cfg.exec_mode = ExecMode::Real;
    s.cfg.batch_size = spec.batch;
    s.real_exec_records = spec.records;
    s.track_ledgers = true;
    s.seed = spec.seed;
    // `clients` physical batch clients (each stands for `batch` logical
    // clients in the paper's accounting).
    s.logical_clients = spec.clients * spec.batch;
    s.ycsb = YcsbConfig {
        record_count: spec.records,
        batch_size: spec.batch,
        ..YcsbConfig::default()
    };
    s.faults = spec.faults.clone();
    s.adversaries = spec.adversaries.clone();
    s.source_factory = spec.factory.clone();
    if spec.fast_timeouts {
        s.cfg.progress_timeout = SimDuration::from_millis(350);
        s.cfg.client_retry = SimDuration::from_millis(700);
        // Zyzzyva's conservative all-`n` wait would eat the whole quick
        // window under a faulty replica; the fabric default (150 ms) is
        // the recovery-scenario setting in both runtimes.
        s.cfg.spec_window = SimDuration::from_millis(150);
    }
    if let Some(m) = spec.measure {
        s.measure = m;
    }
    let (metrics, ledgers) = s.run_full();
    (metrics, ledgers.expect("ledgers tracked"))
}

/// Run the spec on the threaded fabric for `duration` of wall-clock load
/// at `lanes` execution lanes. `partition` mirrors the simulator's
/// `FaultSpec::partition` (two replica groups, cut window relative to
/// deployment start).
pub fn run_fabric(
    spec: &ScenarioSpec,
    lanes: usize,
    duration: Duration,
    partition: Option<(Vec<ReplicaId>, Vec<ReplicaId>, Duration, Duration)>,
) -> DeploymentReport {
    let mut builder = DeploymentBuilder::new(spec.kind, spec.z, spec.n)
        .batch_size(spec.batch)
        .records(spec.records)
        .seed(spec.seed)
        .exec_lanes(lanes);
    if spec.fast_timeouts {
        builder = builder.fast_timeouts();
    }
    for (rid, adv) in &spec.adversaries {
        builder = builder.adversary(*rid, adv.clone());
    }
    if let Some((a, b, from, until)) = partition {
        builder = builder.partition(a, b, from, until);
    }
    let fabric = builder.start();
    match &spec.factory {
        Some(factory) => {
            let f = factory.clone();
            fabric.spawn_source_clients(spec.clients, move |cid, seed| f(cid, seed));
        }
        None => fabric.spawn_ycsb_clients(spec.clients),
    }
    std::thread::sleep(duration);
    fabric.shutdown()
}

/// What an independent replay of one committed ledger found.
#[derive(Debug)]
pub struct ReplayAudit {
    /// Blocks replayed (the ledger's head height).
    pub blocks: u64,
    /// Transaction programs executed (committed or aborted).
    pub programs: u64,
    /// Programs that aborted (underflow, overflow, explicit, invalid).
    pub aborts: u64,
    /// The replayed store after the last block (for invariant checks).
    pub store: KvStore,
}

/// Re-execute a committed ledger, block by block, against a fresh
/// preloaded store and verify every block's recorded post-execution
/// state digest. This re-derives the execution result from the chain
/// alone — independent of which runtime, executor or lane count
/// produced it — and is where scenario program/abort counts come from.
pub fn replay_ledger(ledger: &Ledger, records: u64) -> Result<ReplayAudit, String> {
    if ledger.base_height() > 0 {
        return Err(format!(
            "cannot replay a compacted ledger (base height {})",
            ledger.base_height()
        ));
    }
    let mut store = KvStore::with_ycsb_records(records);
    for h in 1..=ledger.head_height() {
        let block = ledger
            .block(h)
            .ok_or_else(|| format!("missing block {h}"))?;
        for txn in &block.batch.batch.txns {
            store.execute(&txn.op);
        }
        // GeoBFT (and any multi-cluster round) appends several blocks per
        // decision, all stamped with the *round-final* digest; only the
        // last block of the round is checkable. Detect that boundary from
        // the chain alone: the recorded digest changes (or the chain
        // ends). Deferring past a state-preserving block re-checks the
        // same digest value one height later, so nothing is lost.
        let round_end = ledger
            .block(h + 1)
            .is_none_or(|next| next.state_digest != block.state_digest);
        if round_end && store.state_digest() != block.state_digest {
            return Err(format!("replay state divergence at height {h}"));
        }
    }
    let stats = store.stats();
    Ok(ReplayAudit {
        blocks: ledger.head_height(),
        programs: stats.programs,
        aborts: stats.aborts,
        store,
    })
}

/// Assert two ledgers are byte-identical over their common prefix —
/// same batch digests, same state digests, same block hashes — and that
/// the prefix is at least `min_blocks` long. Returns the prefix length.
pub fn assert_identical_prefix(a: &Ledger, b: &Ledger, min_blocks: u64, label: &str) -> u64 {
    let common = a.head_height().min(b.head_height());
    assert!(
        common >= min_blocks,
        "{label}: common prefix too short ({} vs {}, need {min_blocks})",
        a.head_height(),
        b.head_height()
    );
    for h in 1..=common {
        let x = a.block(h).expect("height in range");
        let y = b.block(h).expect("height in range");
        assert_eq!(
            x.batch.batch.digest(),
            y.batch.batch.digest(),
            "{label}: batch divergence at height {h}"
        );
        assert_eq!(
            x.state_digest, y.state_digest,
            "{label}: execution state divergence at height {h}"
        );
        assert_eq!(
            x.hash(),
            y.hash(),
            "{label}: block hash divergence at height {h}"
        );
    }
    common
}

/// Assert the paper's non-divergence property across a replica set:
/// every ledger not in `exclude` verifies internally and agrees (block
/// hashes and state digests) with the others over their common prefix,
/// which must be at least `min_blocks`. Returns the prefix length.
pub fn assert_agreement<'a>(
    ledgers: impl IntoIterator<Item = (&'a ReplicaId, &'a Ledger)>,
    exclude: &[ReplicaId],
    min_blocks: u64,
    label: &str,
) -> u64 {
    let mut honest: Vec<(&ReplicaId, &Ledger)> = ledgers
        .into_iter()
        .filter(|(rid, _)| !exclude.contains(rid))
        .collect();
    honest.sort_by_key(|(rid, _)| **rid);
    assert!(!honest.is_empty(), "{label}: no honest replicas to audit");
    let common = honest
        .iter()
        .map(|(_, l)| l.head_height())
        .min()
        .expect("non-empty");
    assert!(
        common >= min_blocks,
        "{label}: common prefix too short ({common} < {min_blocks})"
    );
    let (_, reference) = honest[0];
    for (rid, ledger) in &honest {
        ledger
            .verify(None)
            .unwrap_or_else(|e| panic!("{label}: replica {rid} chain invalid: {e:?}"));
        for h in 1..=common {
            let a = reference.block(h).expect("height in range");
            let b = ledger.block(h).expect("height in range");
            assert_eq!(
                a.hash(),
                b.hash(),
                "{label}: divergence at height {h} on replica {rid}"
            );
            assert_eq!(
                a.state_digest, b.state_digest,
                "{label}: state fork at height {h} on replica {rid}"
            );
        }
    }
    common
}

/// The deterministic, serializable result of one scenario: everything in
/// here is derived from the *simulator* run (virtual time), so two
/// invocations of the same scenario produce byte-identical JSON — the
/// property the CI determinism job diffs.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioOutcome {
    /// Scenario name from the catalog.
    pub scenario: String,
    /// Protocol under test.
    pub protocol: String,
    /// Committed blocks on the observer replica.
    pub blocks: u64,
    /// Transaction programs found by the replay audit.
    pub programs: u64,
    /// Aborted programs found by the replay audit.
    pub aborts: u64,
    /// Head block hash of the observer replica (hex).
    pub head_hash: String,
    /// Post-execution state digest at the head (hex).
    pub state_digest: String,
}

impl ScenarioOutcome {
    /// Build an outcome from the observer's ledger and its replay audit.
    pub fn from_replay(
        scenario: &str,
        kind: ProtocolKind,
        ledger: &Ledger,
        audit: &ReplayAudit,
    ) -> ScenarioOutcome {
        ScenarioOutcome {
            scenario: scenario.to_string(),
            protocol: format!("{kind:?}"),
            blocks: audit.blocks,
            programs: audit.programs,
            aborts: audit.aborts,
            head_hash: ledger.head_hash().to_hex(),
            state_digest: ledger
                .block(ledger.head_height())
                .map(|b| b.state_digest.to_hex())
                .unwrap_or_default(),
        }
    }
}
