//! YCSB workload configuration and batch sources.

use crate::zipfian::Zipfian;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdb_common::ids::ClientId;
use rdb_consensus::clients::BatchSource;
use rdb_consensus::types::{ClientBatch, Transaction};
use rdb_store::{Operation, Value};
use serde::{Deserialize, Serialize};

/// Operation mix. The paper's evaluation uses pure writes ("we use write
/// queries, as those are typically more costly than read-only queries");
/// other mixes are provided for the examples and extension experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of writes (update existing record).
    pub write: f64,
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
}

impl OpMix {
    /// The paper's write-only workload.
    pub const WRITE_ONLY: OpMix = OpMix {
        write: 1.0,
        read: 0.0,
        rmw: 0.0,
    };

    /// YCSB workload A (50/50 read/update).
    pub const YCSB_A: OpMix = OpMix {
        write: 0.5,
        read: 0.5,
        rmw: 0.0,
    };

    /// YCSB workload F (read-modify-write heavy).
    pub const YCSB_F: OpMix = OpMix {
        write: 0.0,
        read: 0.5,
        rmw: 0.5,
    };
}

/// YCSB workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Active record set (paper: 600 000).
    pub record_count: u64,
    /// Transactions per client batch (paper default: 100).
    pub batch_size: usize,
    /// Zipfian skew (YCSB default 0.99).
    pub theta: f64,
    /// Operation mix.
    pub mix: OpMix,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            record_count: 600_000,
            batch_size: 100,
            theta: Zipfian::YCSB_THETA,
            mix: OpMix::WRITE_ONLY,
        }
    }
}

impl YcsbConfig {
    /// Small configuration for unit/integration tests (1 k records,
    /// batches of 10).
    pub fn small() -> YcsbConfig {
        YcsbConfig {
            record_count: 1_000,
            batch_size: 10,
            theta: Zipfian::YCSB_THETA,
            mix: OpMix::WRITE_ONLY,
        }
    }

    /// Copy with a different batch size (Figure 13 sweeps 10..300).
    pub fn with_batch_size(mut self, batch_size: usize) -> YcsbConfig {
        self.batch_size = batch_size;
        self
    }
}

/// A deterministic per-client YCSB transaction stream.
#[derive(Debug)]
pub struct YcsbWorkload {
    cfg: YcsbConfig,
    zipf: Zipfian,
    rng: StdRng,
    client: ClientId,
    next_txn_seq: u64,
}

impl YcsbWorkload {
    /// Build the stream for one client. The RNG seed mixes the deployment
    /// seed with the client identity so streams are independent but
    /// reproducible.
    pub fn new(cfg: YcsbConfig, client: ClientId, seed: u64) -> YcsbWorkload {
        let client_tag = (client.cluster.0 as u64) << 48 | (client.index as u64) << 8 | 0x5eed;
        let zipf = Zipfian::new(cfg.record_count, cfg.theta);
        YcsbWorkload {
            cfg,
            zipf,
            rng: StdRng::seed_from_u64(seed ^ client_tag),
            client,
            next_txn_seq: 0,
        }
    }

    /// Generate the next transaction.
    pub fn next_txn(&mut self) -> Transaction {
        let key = self.zipf.sample(&mut self.rng);
        let roll: f64 = self.rng.gen();
        let mix = self.cfg.mix;
        let op = if roll < mix.write {
            Operation::Write {
                key,
                value: Value::from_u64(self.rng.gen()),
            }
        } else if roll < mix.write + mix.read {
            Operation::Read { key }
        } else if roll < mix.write + mix.read + mix.rmw {
            Operation::Rmw {
                key,
                delta: self.rng.gen_range(1..100),
            }
        } else {
            Operation::Write {
                key,
                value: Value::from_u64(self.rng.gen()),
            }
        };
        let seq = self.next_txn_seq;
        self.next_txn_seq += 1;
        Transaction {
            client: self.client,
            seq,
            op,
        }
    }

    /// Generate the next batch (the consensus proposal unit).
    pub fn next_batch(&mut self, batch_seq: u64) -> ClientBatch {
        ClientBatch {
            client: self.client,
            batch_seq,
            txns: (0..self.cfg.batch_size).map(|_| self.next_txn()).collect(),
        }
    }

    /// Convert into the [`BatchSource`] closure the consensus clients
    /// consume.
    pub fn into_source(mut self) -> BatchSource {
        Box::new(move |batch_seq| self.next_batch(batch_seq))
    }
}

/// Convenience: build a [`BatchSource`] directly.
pub fn batch_source(cfg: YcsbConfig, client: ClientId, seed: u64) -> BatchSource {
    YcsbWorkload::new(cfg, client, seed).into_source()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_have_configured_size_and_client() {
        let client = ClientId::new(1, 3);
        let mut w = YcsbWorkload::new(YcsbConfig::small(), client, 7);
        let b = w.next_batch(0);
        assert_eq!(b.txns.len(), 10);
        assert_eq!(b.client, client);
        assert!(b.txns.iter().all(|t| t.client == client));
        // Sequences are dense within the stream.
        let seqs: Vec<u64> = b.txns.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn write_only_mix_produces_only_writes() {
        let mut w = YcsbWorkload::new(YcsbConfig::small(), ClientId::new(0, 0), 1);
        for _ in 0..200 {
            assert!(matches!(w.next_txn().op, Operation::Write { .. }));
        }
    }

    #[test]
    fn ycsb_a_mix_is_roughly_half_reads() {
        let cfg = YcsbConfig {
            mix: OpMix::YCSB_A,
            ..YcsbConfig::small()
        };
        let mut w = YcsbWorkload::new(cfg, ClientId::new(0, 0), 2);
        let mut reads = 0;
        let total = 10_000;
        for _ in 0..total {
            if matches!(w.next_txn().op, Operation::Read { .. }) {
                reads += 1;
            }
        }
        let frac = reads as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn keys_stay_in_active_set() {
        let cfg = YcsbConfig {
            record_count: 500,
            ..YcsbConfig::small()
        };
        let mut w = YcsbWorkload::new(cfg, ClientId::new(0, 0), 3);
        for _ in 0..1_000 {
            let key = w.next_txn().op.primary_key().unwrap();
            assert!(key < 500);
        }
    }

    #[test]
    fn streams_are_reproducible_and_client_distinct() {
        let a1: Vec<_> = {
            let mut w = YcsbWorkload::new(YcsbConfig::small(), ClientId::new(0, 1), 7);
            (0..20).map(|_| w.next_txn().op).collect()
        };
        let a2: Vec<_> = {
            let mut w = YcsbWorkload::new(YcsbConfig::small(), ClientId::new(0, 1), 7);
            (0..20).map(|_| w.next_txn().op).collect()
        };
        let b: Vec<_> = {
            let mut w = YcsbWorkload::new(YcsbConfig::small(), ClientId::new(0, 2), 7);
            (0..20).map(|_| w.next_txn().op).collect()
        };
        assert_eq!(a1, a2, "same client+seed => same stream");
        assert_ne!(a1, b, "different clients => different streams");
    }

    #[test]
    fn source_closure_matches_workload() {
        let client = ClientId::new(0, 5);
        let mut direct = YcsbWorkload::new(YcsbConfig::small(), client, 11);
        let mut source = batch_source(YcsbConfig::small(), client, 11);
        assert_eq!(direct.next_batch(0), source(0));
        assert_eq!(direct.next_batch(1), source(1));
    }

    #[test]
    fn paper_defaults() {
        let cfg = YcsbConfig::default();
        assert_eq!(cfg.record_count, 600_000);
        assert_eq!(cfg.batch_size, 100);
        assert_eq!(cfg.mix, OpMix::WRITE_ONLY);
    }
}
