//! The Zipfian key-selection distribution of YCSB.
//!
//! Implements the method of Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases" (SIGMOD '94) — the same algorithm
//! the YCSB `ZipfianGenerator` uses. Items are `0..n`, item popularity is
//! proportional to `1 / rank^theta`, and YCSB's scrambling step (hashing
//! the rank) spreads hot keys across the key space, giving the "uniform
//! Zipfian distribution" the paper mentions.

use rand::Rng;

/// Zipfian generator over `0..n` with skew `theta` (YCSB default 0.99).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
    /// Scramble ranks across the key space (YCSB's
    /// `ScrambledZipfianGenerator` behaviour).
    scrambled: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for the sizes we use; cached because simulations build one
    // generator per client instance over the same 600 k key space (YCSB
    // caches this value the same way).
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(u64, u64), f64>>> = OnceLock::new();
    let key = (n, theta.to_bits());
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(v) = cache.lock().expect("zeta cache").get(&key) {
        return *v;
    }
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    cache.lock().expect("zeta cache").insert(key, sum);
    sum
}

impl Zipfian {
    /// YCSB's default skew.
    pub const YCSB_THETA: f64 = 0.99;

    /// Build a generator over `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
            scrambled: true,
        }
    }

    /// YCSB-default generator (`theta = 0.99`, scrambled).
    pub fn ycsb(n: u64) -> Zipfian {
        Zipfian::new(n, Self::YCSB_THETA)
    }

    /// Disable rank scrambling (rank 0 = hottest key), useful for testing
    /// the skew itself.
    pub fn unscrambled(mut self) -> Zipfian {
        self.scrambled = false;
        self
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw the next key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scrambled {
            // FNV-style scramble, as in YCSB's ScrambledZipfian.
            fnv1a_64(rank) % self.n
        } else {
            rank
        }
    }

    /// The probability mass of the hottest item (rank 0):
    /// `1 / zeta(n, theta)`.
    pub fn hottest_mass(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Internal zeta(2) accessor used by tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

fn fnv1a_64(x: u64) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut hash = OFFSET;
    for b in x.to_le_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::ycsb(1000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn unscrambled_rank0_is_hottest() {
        let z = Zipfian::new(1000, 0.99).unscrambled();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let draws = 200_000;
        for _ in 0..draws {
            *counts.entry(z.sample(&mut rng)).or_default() += 1;
        }
        let hottest = *counts.get(&0).unwrap_or(&0) as f64 / draws as f64;
        let expected = z.hottest_mass();
        assert!(
            (hottest - expected).abs() < 0.01,
            "hottest mass {hottest:.4} vs expected {expected:.4}"
        );
        // Monotone decreasing head: rank 0 > rank 1 > rank 5.
        assert!(counts[&0] > counts[&1]);
        assert!(counts[&1] > counts[&5]);
    }

    #[test]
    fn theta_zero_is_near_uniform() {
        let z = Zipfian::new(100, 0.0).unscrambled();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; 100];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let expected = draws as f64 / 100.0;
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "key {i} deviates {dev:.2} from uniform");
        }
    }

    #[test]
    fn scrambling_spreads_the_head() {
        let z = Zipfian::ycsb(1000);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(z.sample(&mut rng)).or_default() += 1;
        }
        // The hottest scrambled key is fnv(0) % 1000, not key 0.
        let hottest_key = counts.iter().max_by_key(|(_, c)| **c).map(|(k, _)| *k);
        assert_eq!(hottest_key, Some(fnv1a_64(0) % 1000));
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipfian::ycsb(600_000);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_items_rejected() {
        let _ = Zipfian::new(0, 0.5);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn always_in_range(n in 1u64..10_000, theta in 0.0f64..0.99, seed in any::<u64>()) {
                let z = Zipfian::new(n, theta);
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..256 {
                    prop_assert!(z.sample(&mut rng) < n);
                }
            }
        }
    }
}
