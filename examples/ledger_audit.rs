//! Ledger audit and replica recovery (§3 of the paper: "a recovering
//! replica can simply read the ledger of any replica it chooses and
//! directly verify whether the ledger can be trusted").
//!
//! We run a real in-process PBFT deployment, take one replica's
//! blockchain, and then:
//!
//! 1. rebuild a fresh replica's state by replaying the audited chain;
//! 2. hand the recovering replica a *tampered* copy and watch the audit
//!    reject it.
//!
//! ```bash
//! cargo run --release --example ledger_audit
//! ```

use rdb_common::config::SystemConfig;
use rdb_common::ids::{NodeId, ReplicaId};
use rdb_consensus::config::ProtocolKind;
use rdb_consensus::crypto_ctx::CryptoCtx;
use rdb_crypto::sign::KeyStore;
use rdb_ledger::{audit_chain, recover_from, Ledger};
use rdb_store::KvStore;
use resilientdb::DeploymentBuilder;
use std::time::Duration;

fn main() {
    println!("running a PBFT deployment to build some history...\n");
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(10)
        .clients(3)
        .records(5_000)
        .duration(Duration::from_secs(1))
        .run();
    let common = report.audit_ledgers().expect("healthy ledgers");
    println!("deployment done: {} blocks agreed by all replicas", common);

    let peer_ledger = report
        .ledgers
        .get(&ReplicaId::new(0, 0))
        .expect("replica ledger");

    // Recovery context (the auditing replica's own crypto handle).
    let cfg = SystemConfig::geo(1, 4).expect("config");
    let ks = KeyStore::new(0xAAA);
    let signer = ks.register(NodeId::Replica(ReplicaId::new(0, 9)));
    let crypto = CryptoCtx::new(signer, ks.verifier(), false);

    // 1. Honest recovery: replay the chain into a fresh store.
    let recovered = recover_from(
        peer_ledger,
        None,
        &cfg,
        &crypto,
        KvStore::with_ycsb_records(5_000),
    )
    .expect("audit passes");
    println!(
        "recovered a fresh replica: {} transactions replayed, state digest {}",
        recovered.applied_txns(),
        recovered.state_digest()
    );

    // 2. A malicious peer rewrites history: change one block's batch.
    let mut blocks = peer_ledger.blocks().to_vec();
    if blocks.len() > 2 {
        blocks[2].batch =
            rdb_consensus::types::SignedBatch::noop(rdb_common::ids::ClusterId(0), 99);
    }
    let tampered = Ledger::from_blocks_unchecked(blocks);
    match audit_chain(&tampered, None, &cfg, &crypto) {
        Err(e) => println!("tampered ledger rejected as expected: {e}"),
        Ok(()) => panic!("tampered ledger must not pass the audit"),
    }

    // 3. A forked peer: internally valid but disagreeing with a trusted
    //    prefix.
    let mut fork = Ledger::new();
    fork.append(
        rdb_consensus::types::SignedBatch::noop(rdb_common::ids::ClusterId(0), 1),
        None,
        rdb_crypto::digest::Digest::ZERO,
    );
    match audit_chain(&fork, Some(peer_ledger), &cfg, &crypto) {
        Err(e) => println!("forked ledger rejected as expected: {e}"),
        Ok(()) => panic!("forked ledger must not pass the audit"),
    }
}
