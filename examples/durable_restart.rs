//! Durable storage end to end: boot a fabric with log-structured engines
//! under every replica, commit SmallBank transfers, shut the whole thing
//! down — then restart *from the data directory alone* and show that
//! every replica comes back with a byte-identical ledger head and table
//! digest, still serving the committed balances.
//!
//! ```bash
//! cargo run --release --example durable_restart
//! ```

use rdb_common::ids::ClusterId;
use rdb_consensus::config::ProtocolKind;
use rdb_store::{ExecOutcome, Operation, TxnOutcome, TxnProgram};
use resilientdb::{DeploymentBuilder, Fabric, StorageMode};
use std::path::PathBuf;

fn main() {
    // Scratch data directory under the gitignored target/tmp.
    let data = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("tmp")
        .join(format!("durable-restart-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);

    println!("SmallBank on durable PBFT, 1 cluster x 4 replicas");
    println!("data directory: {}\n", data.display());

    // First incarnation: every replica opens a log-structured engine
    // under the data dir; the execute thread WAL-logs each decision.
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .records(500)
        .storage(StorageMode::Durable(data.clone()))
        .start();
    let session = fabric.session(ClusterId(0));
    for (from, to, amount) in [(400u64, 7u64, 50u64), (300, 8, 25), (200, 9, 10)] {
        let proof = session
            .submit_one(Operation::Txn(TxnProgram::transfer(from, to, amount)))
            .wait();
        assert!(matches!(
            proof.results.outcomes[0],
            ExecOutcome::Txn(TxnOutcome::Committed { .. })
        ));
        println!(
            "transfer {from:>3} -> {to} of {amount:>2}: committed at block {}",
            proof.block_height
        );
    }
    drop(session);
    let before = fabric.shutdown();
    println!("\nshutdown: {}", before.summary());

    // Second incarnation: nothing but the data directory. The manifest
    // pins the deployment shape; every replica recovers table + ledger.
    let rebooted = Fabric::restart_from(&data).expect("restart from data dir");
    let session = rebooted.session(ClusterId(0));

    // Account 7 was preloaded with 7 and received 50: a quorum read of
    // the recovered state must see 57.
    let proof = session.submit_one(Operation::Read { key: 7 }).wait();
    let ExecOutcome::ReadValue(Some(balance)) = proof.results.outcomes[0] else {
        panic!("account 7 must exist after restart");
    };
    println!("\nrestarted: account 7 balance reads {}", balance.counter());
    assert_eq!(balance.counter(), 57, "7 preloaded + 50 transferred");

    drop(session);
    let after = rebooted.shutdown();
    for (rid, ledger) in &before.ledgers {
        let recovered = &after.ledgers[rid];
        assert!(
            recovered.head_height() >= ledger.head_height(),
            "replica {rid}: recovered chain lost blocks"
        );
        assert_eq!(
            recovered.block(ledger.head_height()).expect("head").hash(),
            ledger.head_hash(),
            "replica {rid}: recovered head differs from what was committed"
        );
    }
    println!(
        "every replica recovered its committed ledger head byte-identically \
         ({} keys scanned from disk)",
        after.storage.stats.keys_recovered
    );

    let _ = std::fs::remove_dir_all(&data);
}
