//! SmallBank over consensus: submit register-machine transfer programs
//! through a live PBFT fabric and print each commit proof — including a
//! transfer that *aborts on underflow* yet still commits, with the same
//! `f + 1` attestation quorum as any successful transaction. Aborting is
//! an execution outcome, not a consensus failure: the program occupies
//! its slot in the total order, touches nothing, and every replica
//! attests to exactly that.
//!
//! ```bash
//! cargo run --release --example smallbank
//! ```

use rdb_common::ids::ClusterId;
use rdb_consensus::config::ProtocolKind;
use rdb_store::{ExecOutcome, Operation, TxnAbort, TxnOutcome, TxnProgram};
use resilientdb::DeploymentBuilder;

fn main() {
    println!("SmallBank on PBFT, 1 cluster x 4 replicas\n");

    // The preload seeds account k with balance k: account 7 holds 7
    // units, account 400 holds 400. Global F = 1, so proofs carry at
    // least 2 matching attestations.
    let records = 500;
    let quorum = 2;
    let fabric = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .records(records)
        .start();
    let session = fabric.session(ClusterId(0));

    // A funded transfer: account 400 can afford 50.
    let proof = session
        .submit_one(Operation::Txn(TxnProgram::transfer(400, 7, 50)))
        .wait();
    println!(
        "transfer 400 -> 7   of  50: {:?}  (seq {}, block {}, {} attestations)",
        proof.results.outcomes[0],
        proof.seq,
        proof.block_height,
        proof.quorum_size()
    );
    assert!(matches!(
        proof.results.outcomes[0],
        ExecOutcome::Txn(TxnOutcome::Committed { .. })
    ));
    assert!(proof.quorum_size() >= quorum);

    // An underfunded transfer: account 7 now holds 57 units and cannot
    // cover 1000. The `Sub` instruction underflows, the program aborts —
    // and the abort *commits*, with a full quorum proof. This is the
    // end-to-end abort path: `TxnEffect` -> `ReplyData.results` ->
    // `CommitProof.results`.
    let proof = session
        .submit_one(Operation::Txn(TxnProgram::transfer(7, 400, 1_000)))
        .wait();
    let outcome = &proof.results.outcomes[0];
    println!(
        "transfer   7 -> 400 of 1000: {:?}  (seq {}, block {}, {} attestations)",
        outcome,
        proof.seq,
        proof.block_height,
        proof.quorum_size()
    );
    let ExecOutcome::Txn(TxnOutcome::Aborted(TxnAbort::Underflow { pc })) = outcome else {
        panic!("an underfunded transfer must abort on underflow");
    };
    println!("  -> aborted by the Sub instruction at pc {pc}: insufficient funds");
    assert!(
        proof.quorum_size() >= quorum,
        "aborts carry the same f+1 proof as commits"
    );

    // The aborted transfer moved nothing: a third transfer re-reads the
    // balance by spending exactly what account 7 still holds (7 + 50).
    let proof = session
        .submit_one(Operation::Txn(TxnProgram::transfer(7, 400, 57)))
        .wait();
    println!(
        "transfer   7 -> 400 of  57: {:?}  (seq {}, block {})",
        proof.results.outcomes[0], proof.seq, proof.block_height
    );
    assert!(
        matches!(
            proof.results.outcomes[0],
            ExecOutcome::Txn(TxnOutcome::Committed { .. })
        ),
        "the aborted transfer must not have touched the balance"
    );

    let report = fabric.shutdown();
    let common = report.audit_ledgers().expect("ledger audit");
    println!(
        "\nshutdown: {} batches committed, ledgers agree on {common} blocks",
        report.completed_batches
    );
}
