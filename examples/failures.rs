//! Failure handling walkthrough: GeoBFT's remote view-change protocol
//! (§2.3, Figure 7 of the paper) in action.
//!
//! We make the primary of the Oregon cluster *Byzantine*: it participates
//! in local replication but never shares commit certificates with the
//! other clusters (case (1) of Example 2.4 — indistinguishable, from a
//! single message, from a faulty receiver). The other clusters detect the
//! missing certificates, agree locally via DRVC, send signed RVC requests
//! to their same-index peers in Oregon, and force Oregon through a local
//! view change; the new primary resumes sharing.
//!
//! ```bash
//! cargo run --release --example failures
//! ```

use rdb_common::ids::ReplicaId;
use rdb_common::time::SimDuration;
use rdb_consensus::config::ProtocolKind;
use rdb_simnet::{FaultSpec, Scenario};

fn run(label: &str, faults: Vec<FaultSpec>) {
    let mut s = Scenario::paper(ProtocolKind::GeoBft, 3, 4).quick();
    s.logical_clients = 30_000;
    s.cfg.remote_timeout = SimDuration::from_millis(250);
    s.cfg.progress_timeout = SimDuration::from_millis(400);
    s.cfg.client_retry = SimDuration::from_millis(800);
    s.faults = faults;
    let m = s.run();
    println!(
        "{label:<42} {:>9.0} txn/s   latency {:>6.3}s",
        m.throughput_txn_s, m.avg_latency_s
    );
}

fn main() {
    println!("GeoBFT, 3 clusters x 4 replicas (f = 1 per cluster):\n");
    run("healthy deployment", vec![]);
    run(
        "Byzantine Oregon primary (withholds certs)",
        vec![FaultSpec::SuppressGlobalShare {
            replica: ReplicaId::new(0, 0),
        }],
    );
    run(
        "crashed backup in every cluster (f each)",
        (0..3u16)
            .map(|c| FaultSpec::crash_at_secs(ReplicaId::new(c, 3), 0.0))
            .collect(),
    );
    run(
        "Oregon primary crashes mid-run",
        vec![FaultSpec::crash_at_secs(ReplicaId::new(0, 0), 1.0)],
    );
    println!("\nIn all faulty runs the system keeps committing: the remote");
    println!("view-change protocol replaces the withholding/crashed primary and");
    println!("the new primary resumes certificate sharing (Theorem 2.7).");
}
