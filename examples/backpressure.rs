//! Backpressure: drive a quickstart-sized deployment well past its
//! capacity and watch the bounded stage queues absorb the overload —
//! droppable consensus traffic is shed at the input bound, client
//! admission blocks, queue depth stays flat, and the chain still commits
//! and agrees.
//!
//! ```bash
//! cargo run --release --example backpressure
//! ```

use rdb_consensus::config::ProtocolKind;
use rdb_consensus::stage::Stage;
use resilientdb::{DeploymentBuilder, QueuePolicy};
use std::time::Duration;

fn main() {
    const INPUT_CAP: usize = 12;
    println!(
        "ResilientDB backpressure: PBFT 1x4, 16 clients against {INPUT_CAP}-deep input queues\n"
    );

    // 16 closed-loop clients against deliberately tiny input queues:
    // offered load far above what admission lets through.
    let report = DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(16)
        .records(5_000)
        .verifier_threads(2)
        .input_queue(QueuePolicy::shed(INPUT_CAP))
        .duration(Duration::from_secs(1))
        .run();

    println!("throughput:        {:>10.0} txn/s", report.throughput_txn_s);
    println!("completed batches: {:>10}", report.completed_batches);
    println!("mean latency:      {:>10.2?}", report.avg_latency);

    // The per-stage counters tell the overload story: shed = droppable
    // messages dropped at a full queue, blocked = time producers spent
    // parked on one (the backpressure reaching them), q = live backlog —
    // which can never exceed the bound.
    println!("\nper-stage pipeline counters (summed over the 4 replicas):");
    for row in &report.stages.rows {
        println!(
            "  {:>7}: processed {:>7}  shed {:>6}  queued {:>4}  blocked {:>10.2?}",
            row.stage.label(),
            row.processed,
            row.shed,
            row.queue_depth,
            row.blocked,
        );
    }
    let input = report.stages.row(Stage::Input);
    assert!(
        input.queue_depth <= (INPUT_CAP * 4) as u64,
        "input backlog exceeded the bound"
    );
    println!(
        "\ninput stage absorbed the flood: {} shed, {:.2?} of admission blocking, \
         final backlog {} (never exceeds the {} bound)",
        input.shed,
        input.blocked,
        input.queue_depth,
        INPUT_CAP * 4
    );

    // Overload must never cost agreement: shed traffic is recovered by
    // protocol retransmission, so every replica commits the same chain.
    let common = report.audit_ledgers().expect("ledgers agree");
    report
        .audit_execution_stage()
        .expect("execution stage matches ledger heads");
    println!("all replicas agree on {common} committed blocks — overload shed work, not safety");
}
