//! Geo-scale deployment walkthrough: simulate the paper's six-region
//! Google Cloud deployment (Table 1 latencies and bandwidths) and watch
//! GeoBFT exploit the topology that cripples a single-primary protocol.
//!
//! ```bash
//! cargo run --release --example geo_deployment
//! ```

use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn main() {
    println!("Six regions (Oregon, Iowa, Montreal, Belgium, Taiwan, Sydney),");
    println!("10 replicas each, YCSB write-only, batch size 100.\n");

    for kind in [ProtocolKind::GeoBft, ProtocolKind::Pbft] {
        let mut s = Scenario::paper(kind, 6, 10).quick();
        s.logical_clients = 40_000;
        let m = s.run();
        println!("{}", m.summary());
        println!(
            "    WAN traffic: {:.2} MB/s; messages/decision: {:.0} local, {:.0} global\n",
            m.global_mb_per_s, m.msgs_local_per_decision, m.msgs_global_per_decision
        );
    }

    println!("GeoBFT keeps the quadratic message complexity inside regions and");
    println!("sends only f+1 certificate messages per remote cluster (Figure 5");
    println!("of the paper) — which is why it wins at geo scale.");
}
