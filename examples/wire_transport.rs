//! Wire transport: run the same PBFT deployment twice — once over the
//! default in-process channel mesh and once over real loopback TCP
//! connections — and verify that serialization changed the *bytes
//! moved*, never the *chain committed*. Every message crosses the socket
//! as a length-prefixed `rdb_consensus::codec` frame, padded to the
//! paper's §4 wire-size model, so the per-link byte counters line up
//! with the bandwidth model the WAN scale claims are built on.
//!
//! ```bash
//! cargo run --release --example wire_transport
//! ```

use rdb_common::ids::ReplicaId;
use rdb_consensus::config::ProtocolKind;
use resilientdb::{DeploymentBuilder, DeploymentReport, TransportMode};
use std::time::Duration;

fn run(mode: TransportMode) -> DeploymentReport {
    DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(5)
        .clients(1)
        .records(500)
        .seed(7)
        .transport_mode(mode)
        .duration(Duration::from_millis(900))
        .run()
}

fn main() {
    println!("ResilientDB wire transport: PBFT 1x4, in-process vs loopback TCP\n");

    let inproc = run(TransportMode::InProcess);
    let socket = run(TransportMode::Tcp);

    for (label, report) in [("in-process", &inproc), ("tcp", &socket)] {
        println!(
            "{label:>10}: {:>8.0} txn/s, {} batches, {} decisions, net: {}",
            report.throughput_txn_s,
            report.completed_batches,
            report.decided,
            report.net.summary(),
        );
    }

    // Both runs committed, agreed, and audit clean.
    for (label, report) in [("in-process", &inproc), ("tcp", &socket)] {
        assert!(report.completed_batches > 0, "{label}: no progress");
        report
            .audit_ledgers()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        report
            .audit_execution_stage()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }

    // Same workload, same seed => byte-identical chains over the common
    // prefix. The transport may only change timing, never content.
    let a = &inproc.ledgers[&ReplicaId::new(0, 0)];
    let b = &socket.ledgers[&ReplicaId::new(0, 0)];
    let prefix = a.head_height().min(b.head_height());
    assert!(prefix >= 1, "no common prefix to compare");
    for h in 1..=prefix {
        assert_eq!(
            a.block(h).unwrap().hash(),
            b.block(h).unwrap().hash(),
            "divergence at height {h}"
        );
    }
    println!("\nchains byte-identical over {prefix} blocks");

    // Only the socket run moved real bytes, and every loaded link
    // accounted frames behind them.
    assert!(inproc.net.links.is_empty());
    assert!(!socket.net.links.is_empty());
    assert!(socket.net.total_bytes_out() > 0);
    let busiest = socket
        .net
        .links
        .iter()
        .max_by_key(|l| l.bytes_out)
        .expect("links exist");
    println!(
        "busiest link {} -> {}: {} frames, {} bytes out, {} reconnects",
        busiest.from, busiest.to, busiest.frames_out, busiest.bytes_out, busiest.reconnects
    );
    println!("\nwire transport OK");
}
