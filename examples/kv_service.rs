//! The fabric as a key-value *service*: start a live GeoBFT deployment,
//! submit writes and reads from plain threads through open-loop client
//! sessions, and print the read-back values together with their commit
//! proofs (`f + 1` matching attestations, §2.1/§2.4 of the paper).
//!
//! ```bash
//! cargo run --release --example kv_service
//! ```

use rdb_common::ids::ClusterId;
use rdb_consensus::config::ProtocolKind;
use rdb_store::{ExecOutcome, Operation, Value};
use resilientdb::DeploymentBuilder;
use std::sync::Arc;

fn main() {
    println!("ResilientDB as a service: GeoBFT, 2 clusters x 4 replicas\n");

    // `start()` boots the replicas and hands back a live fabric — no
    // workload, no fixed duration. Clients are ours to create.
    let fabric = Arc::new(
        DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
            .batch_size(10)
            .records(1_000)
            .start(),
    );

    // Writers: one plain OS thread per cluster, each with its own
    // session. `submit` blocks only if the fabric is overloaded (the
    // bounded input queue is the admission edge); `wait` resolves once
    // f + 1 replicas attested the same execution result.
    let writers: Vec<_> = (0..2u16)
        .map(|cluster| {
            let fabric = Arc::clone(&fabric);
            std::thread::spawn(move || {
                let session = fabric.session(ClusterId(cluster));
                for i in 0..3u64 {
                    let key = cluster as u64 * 100 + i;
                    let proof = session
                        .submit_one(Operation::Write {
                            key,
                            value: Value::from_u64(key * 7),
                        })
                        .wait();
                    println!(
                        "write key {key:>3} -> committed at seq {:>2}, block {:>2}, \
                         attested by {} replicas of cluster {}",
                        proof.seq,
                        proof.block_height,
                        proof.quorum_size(),
                        cluster + 1,
                    );
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }

    // Read everything back through a fresh session — GeoBFT orders all
    // clusters' writes into one global chain, so a cluster-0 session
    // observes cluster-1 writes too, and the committed values come with
    // the proof, not just a digest.
    println!();
    let reader = fabric.session(ClusterId(0));
    for cluster in 0..2u64 {
        for i in 0..3u64 {
            let key = cluster * 100 + i;
            let proof = reader.submit_one(Operation::Read { key }).wait();
            let ExecOutcome::ReadValue(value) = &proof.results.outcomes[0] else {
                panic!("a read returns a read outcome");
            };
            let got = value.as_ref().expect("written above");
            assert_eq!(*got, Value::from_u64(key * 7), "read-your-writes");
            println!(
                "read  key {key:>3} -> counter {:>4} under digest {}, quorum {:?}",
                got.counter(),
                proof.result_digest,
                proof.attesting_replicas,
            );
        }
    }

    // Shut down and keep the usual report + audits.
    let fabric = Arc::into_inner(fabric).expect("all threads joined");
    let report = fabric.shutdown();
    let common = report.audit_ledgers().expect("ledger audit");
    println!(
        "\nshutdown: {} batches committed, ledgers agree on {common} blocks",
        report.completed_batches
    );
}
