//! Quickstart: spin up a real, in-process ResilientDB deployment running
//! GeoBFT — two clusters of four replicas on OS threads, real ED25519-style
//! signatures, real YCSB execution — submit transactions from closed-loop
//! clients, and inspect the resulting blockchain.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rdb_consensus::config::ProtocolKind;
use resilientdb::DeploymentBuilder;
use std::time::Duration;

fn main() {
    println!("ResilientDB quickstart: GeoBFT, 2 clusters x 4 replicas, in-process\n");

    let report = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(10)
        .clients(4)
        .records(10_000)
        .duration(Duration::from_secs(2))
        .run();

    println!("throughput:        {:>10.0} txn/s", report.throughput_txn_s);
    println!("completed batches: {:>10}", report.completed_batches);
    println!("mean latency:      {:>10.2?}", report.avg_latency);
    println!("p99 latency:       {:>10.2?}", report.p99_latency);

    // Every replica independently maintains the full blockchain (§3 of the
    // paper). Verify integrity and agreement.
    let common = report
        .audit_ledgers()
        .expect("ledger audit must pass on a healthy deployment");
    println!("\nledger audit: all replicas agree on {common} blocks");

    // Walk the first few blocks of one replica's chain.
    let (rid, ledger) = report.ledgers.iter().next().expect("at least one replica");
    println!("\nblockchain of replica {rid} (first blocks):");
    for block in ledger.blocks().iter().take(5) {
        println!(
            "  height {:>3}  hash {}  parent {}  txns {:>3}  client {}",
            block.height,
            block.hash(),
            block.parent,
            block.batch.batch.len(),
            block.batch.batch.client,
        );
    }
    println!("  ... ({} blocks total)", ledger.len());
}
