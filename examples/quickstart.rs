//! Quickstart: spin up a real, in-process ResilientDB deployment running
//! GeoBFT — two clusters of four replicas on OS threads, real ED25519-style
//! signatures, real YCSB execution — drive it through the client service
//! API, and inspect the resulting blockchain.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use rdb_common::ids::ClusterId;
use rdb_consensus::config::ProtocolKind;
use rdb_store::{ExecOutcome, Operation, Value};
use resilientdb::DeploymentBuilder;
use std::time::Duration;

fn main() {
    println!("ResilientDB quickstart: GeoBFT, 2 clusters x 4 replicas, in-process\n");

    // `start()` returns a live fabric: replicas are up, serving, and
    // waiting for clients.
    let fabric = DeploymentBuilder::new(ProtocolKind::GeoBft, 2, 4)
        .batch_size(10)
        .records(10_000)
        .start();

    // One write and one read-back through an open-loop session — the
    // programmatic surface (see examples/kv_service.rs for more).
    let session = fabric.session(ClusterId(0));
    let write = session
        .submit_one(Operation::Write {
            key: 99,
            value: Value::from_u64(4242),
        })
        .wait();
    println!(
        "write committed: seq {}, block {}, {} attestations",
        write.seq,
        write.block_height,
        write.quorum_size()
    );
    let read = session.submit_one(Operation::Read { key: 99 }).wait();
    let ExecOutcome::ReadValue(Some(v)) = &read.results.outcomes[0] else {
        panic!("read returns the committed value");
    };
    println!(
        "read back:       counter {} (with f+1 proof)\n",
        v.counter()
    );

    // The paper's closed-loop YCSB benchmark, riding the same API: attach
    // workload clients, let them hammer the fabric, then shut down and
    // collect the report.
    fabric.spawn_ycsb_clients(4);
    std::thread::sleep(Duration::from_secs(2));
    let report = fabric.shutdown();

    println!("throughput:        {:>10.0} txn/s", report.throughput_txn_s);
    println!("completed batches: {:>10}", report.completed_batches);
    println!("mean latency:      {:>10.2?}", report.avg_latency);
    println!("p99 latency:       {:>10.2?}", report.p99_latency);

    // Every replica independently maintains the full blockchain (§3 of the
    // paper). Verify integrity and agreement.
    let common = report
        .audit_ledgers()
        .expect("ledger audit must pass on a healthy deployment");
    println!("\nledger audit: all replicas agree on {common} blocks");

    // Walk the first few blocks of one replica's chain.
    let (rid, ledger) = report.ledgers.iter().next().expect("at least one replica");
    println!("\nblockchain of replica {rid} (first blocks):");
    for block in ledger.blocks().iter().take(5) {
        println!(
            "  height {:>3}  hash {}  parent {}  txns {:>3}  client {}",
            block.height,
            block.hash(),
            block.parent,
            block.batch.batch.len(),
            block.batch.batch.client,
        );
    }
    println!("  ... ({} blocks total)", ledger.len());
}
