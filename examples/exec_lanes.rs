//! Execution lanes: run the same YCSB deployment with the execute stage
//! split into key-sharded lanes and watch the per-lane counters — each
//! key executes on lane `key % lanes`, key-disjoint batches apply in
//! parallel, conflicting batches serialize per shard, and commit-order
//! retirement keeps the committed chain byte-identical to the
//! single-threaded executor.
//!
//! ```bash
//! cargo run --release --example exec_lanes
//! ```

use rdb_consensus::config::ProtocolKind;
use rdb_consensus::stage::Stage;
use rdb_crypto::digest::Digest;
use resilientdb::{DeploymentBuilder, DeploymentReport};
use std::time::Duration;

/// A height both runs comfortably reach; with a single closed-loop
/// client the proposal order is deterministic, so the chain below it is
/// the same in both runs.
const COMPARE_HEIGHT: u64 = 10;

fn run(lanes: usize) -> DeploymentReport {
    DeploymentBuilder::new(ProtocolKind::Pbft, 1, 4)
        .batch_size(20)
        .clients(1)
        .records(100_000)
        .seed(42)
        .exec_lanes(lanes)
        .duration(Duration::from_millis(800))
        .run()
}

fn main() {
    println!("ResilientDB execution lanes: PBFT 1x4, 1 lane vs 4 lanes\n");

    let mut digests: Vec<(usize, u64, Digest)> = Vec::new();
    for lanes in [1usize, 4] {
        let report = run(lanes);
        report
            .audit_ledgers()
            .expect("replicas committed divergent chains");
        report
            .audit_execution_stage()
            .expect("materialized tables diverged from ledger heads");

        println!(
            "lanes={lanes}: {:>8.0} txn/s, {} decisions, {} committed blocks",
            report.throughput_txn_s,
            report.decided,
            report.common_prefix_blocks()
        );
        // One row per lane: jobs and operations applied, time spent
        // applying, and how long the commit-order retirement head waited
        // on the lane (conflict-stall: batches serialized on its shards).
        for (lane, occupancy) in report.exec_lane_occupancy() {
            let row = &report.stages.lanes[lane];
            println!(
                "  lane {lane}: {:>5} jobs {:>6} ops  occupancy {:>5.2}%  stalled {:?}",
                row.batches,
                row.ops,
                100.0 * occupancy,
                row.stalled
            );
        }
        // Every decision the execute stage processed is accounted to a
        // lane, whichever path ran.
        let lane_jobs: u64 = report.stages.lanes.iter().map(|l| l.batches).sum();
        assert!(
            lane_jobs >= report.stages.row(Stage::Execute).processed,
            "lane accounting lost decisions"
        );

        // Remember the post-execution state at a height both runs reach,
        // to compare across lane counts below.
        assert!(
            report.common_prefix_blocks() >= COMPARE_HEIGHT,
            "run too short to compare (reached {})",
            report.common_prefix_blocks()
        );
        let observer = report.ledgers.values().next().expect("a ledger");
        let digest = observer
            .block(COMPARE_HEIGHT)
            .map(|b| b.state_digest)
            .unwrap_or(Digest::ZERO);
        digests.push((lanes, report.common_prefix_blocks(), digest));
        println!();
    }

    // Lanes change timing, never content: both runs replay the same
    // seeded workload through the same consensus order, so the chain —
    // and with it the post-execution state digest at any shared height —
    // is identical whatever the lane count.
    for (lanes, height, digest) in &digests {
        println!(
            "lanes={lanes}: committed {height} blocks, state at height {COMPARE_HEIGHT} = {}",
            digest.short_hex()
        );
    }
    let first = digests[0].2;
    assert!(
        digests.iter().all(|(_, _, d)| *d == first),
        "lane count changed the executed state"
    );
    println!("\nthe committed chain is lane-count invariant; only the lane occupancy shifts");
}
