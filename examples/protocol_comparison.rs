//! Run all five consensus protocols on the same geo-distributed workload
//! and print a side-by-side comparison — a miniature of the paper's
//! evaluation (§4).
//!
//! ```bash
//! cargo run --release --example protocol_comparison
//! ```

use rdb_consensus::config::ProtocolKind;
use rdb_simnet::Scenario;

fn main() {
    println!("4 regions x 7 replicas, YCSB write-only, batch 100, Table 1 network\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "protocol", "txn/s", "latency(s)", "dec/s", "local msg/dec", "global msg/dec"
    );

    let mut best: Option<(String, f64)> = None;
    for kind in ProtocolKind::ALL {
        let mut s = Scenario::paper(kind, 4, 7).quick();
        s.logical_clients = 40_000;
        let m = s.run();
        println!(
            "{:<10} {:>12.0} {:>12.3} {:>12.1} {:>14.1} {:>14.1}",
            m.protocol,
            m.throughput_txn_s,
            m.avg_latency_s,
            m.decisions_per_s,
            m.msgs_local_per_decision,
            m.msgs_global_per_decision
        );
        if best.as_ref().is_none_or(|(_, t)| m.throughput_txn_s > *t) {
            best = Some((m.protocol.clone(), m.throughput_txn_s));
        }
    }
    let (winner, _) = best.expect("ran protocols");
    println!("\nwinner at geo scale: {winner} (the paper's Figure 10/11 result)");
}
